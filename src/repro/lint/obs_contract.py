"""Obs-contract checker (RPL901/RPL902/RPL903).

The metrics registry accepts any string as a metric name, which means a
typo at one record site ("executor.chunk" for "executor.chunks")
silently splits a series, and a renamed metric silently orphans every
renderer and README row that still uses the old name.  The catalog in
:mod:`repro.obs.catalog` declares every legal name; this checker holds
the whole tree to it — reading the catalog module's **AST literals**
(never importing it), so fixture trees with their own ``obs/catalog.py``
are checkable without being executable.

* RPL901 — a *literal* metric name at a ``counter``/``gauge``/
  ``histogram`` call site that is not declared in the catalog (or is
  declared with a different kind).
* RPL902 — a *dynamic* (f-string) metric name whose template — the
  f-string with every interpolation replaced by ``*`` — is not a
  declared family (or has the wrong kind).  ``f"engine.{name}.runs"``
  must reduce to a registered ``engine.*.runs`` row.
* RPL903 — catalog drift: a metric-shaped string or f-string in the
  obs *render* modules that resolves to no catalog entry (renderers
  read names the recorders never write), or a README metric-catalog
  table out of sync with the catalog — missing rows, unknown rows, or
  kind mismatches.  README rows spell families with ``<placeholder>``
  segments (``engine.<name>.runs``), which the checker normalizes to
  the catalog's ``*`` form.  README findings anchor on the catalog
  module, the declaration the README must mirror.

Projects without an ``obs/catalog.py`` module (most lint fixtures) are
exempt from all three codes.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from .findings import Finding
from .project import Module, Project

#: Registry record methods, by declared kind.
_RECORDERS = {"counter": "counter", "gauge": "gauge",
              "histogram": "histogram"}

#: A whole string that could plausibly be a metric name: dotted
#: lower_snake segments (``*`` allowed so templates match too).
_METRIC_SHAPED = re.compile(r"^[a-z_][a-z0-9_*]*(\.[a-z0-9_*]+)+$")

#: README markers bracketing the machine-checked metric table.
_README_START = "<!-- lint:metric-catalog -->"
_README_END = "<!-- /lint:metric-catalog -->"


class Catalog:
    """The declared names, parsed from a catalog module's literals."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.static: Dict[str, str] = {}        # name -> kind
        self.families: List[Tuple[str, str]] = []  # (template, kind)
        self.decl_line = 1
        for stmt in module.tree.body:
            target, value = self._assignment(stmt)
            if target == "STATIC_METRICS":
                self.decl_line = stmt.lineno
                for name, spec in self._literal(value, {}).items():
                    self.static[name] = spec[0]
            elif target == "METRIC_FAMILIES":
                for row in self._literal(value, ()):
                    self.families.append((row[0], row[1]))
        self._family_regexes = [
            (template, kind, _template_regex(template))
            for template, kind in self.families]

    @staticmethod
    def _assignment(stmt: ast.stmt) -> Tuple[Optional[str], ast.expr]:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            return stmt.targets[0].id, stmt.value
        if isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.value is not None:
            return stmt.target.id, stmt.value
        return None, ast.Constant(value=None)

    @staticmethod
    def _literal(node: ast.expr, default):
        try:
            return ast.literal_eval(node)
        except (ValueError, SyntaxError):
            return default

    def kind_of(self, name: str) -> Optional[str]:
        """Kind for a concrete name (static first, then families)."""
        if name in self.static:
            return self.static[name]
        for _, kind, regex in self._family_regexes:
            if regex.match(name):
                return kind
        return None

    def family_kind(self, template: str) -> Optional[str]:
        for declared, kind in self.families:
            if declared == template:
                return kind
        return None

    def entries(self) -> Dict[str, str]:
        combined = dict(self.static)
        combined.update(self.families)
        return combined

    def covers_prefix(self, prefix: str) -> bool:
        return any(entry.startswith(prefix) for entry in self.entries())

    def covers_suffix(self, suffix: str) -> bool:
        return any(entry.endswith(suffix) for entry in self.entries())


def _template_regex(template: str) -> "re.Pattern[str]":
    pattern = "".join("[^.]+" if part == "*" else re.escape(part)
                      for part in re.split(r"(\*)", template))
    return re.compile(f"^{pattern}$")


def _fstring_template(node: ast.JoinedStr) -> Optional[str]:
    """The ``*``-placeholder template of an f-string, or ``None`` when
    a literal part is not a plain string."""
    parts: List[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant):
            if not isinstance(value.value, str):
                return None
            parts.append(value.value)
        elif isinstance(value, ast.FormattedValue):
            parts.append("*")
        else:
            return None
    return "".join(parts)


def _drift_candidates(tree: ast.AST) -> Iterator[ast.AST]:
    """String constants and whole f-strings, without descending into
    an f-string's parts (its ``".2f"`` format specs and literal
    fragments are not candidate metric names on their own)."""
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.JoinedStr):
            yield node
            continue
        if isinstance(node, ast.Constant):
            yield node
            continue
        stack.extend(ast.iter_child_nodes(node))


def find_catalog(project: Project) -> Optional[Catalog]:
    module = project.find_module("obs/catalog.py")
    if module is None:
        return None
    return Catalog(module)


def _find_readme(root: Path) -> Optional[Path]:
    probe = root
    for _ in range(4):
        candidate = probe / "README.md"
        if candidate.is_file():
            return candidate
        if probe.parent == probe:
            break
        probe = probe.parent
    return None


def _readme_rows(text: str) -> Optional[List[Tuple[int, str, str]]]:
    """(line, name-template, kind) rows of the marked README table,
    or ``None`` when the markers are absent."""
    lines = text.splitlines()
    try:
        start = next(i for i, line in enumerate(lines)
                     if _README_START in line)
        end = next(i for i, line in enumerate(lines)
                   if _README_END in line and i > start)
    except StopIteration:
        return None
    rows: List[Tuple[int, str, str]] = []
    for offset, line in enumerate(lines[start + 1:end]):
        cells = [cell.strip() for cell in line.strip().strip("|")
                 .split("|")]
        if len(cells) < 2:
            continue
        token = re.match(r"`([^`]+)`", cells[0])
        if token is None:
            continue
        name = re.sub(r"<[^<>]*>", "*", token.group(1))
        if not _METRIC_SHAPED.match(name):
            continue
        rows.append((start + 2 + offset, name, cells[1]))
    return rows


class ObsContractChecker:
    """RPL901-RPL903 over every module of the tree."""

    codes = ("RPL901", "RPL902", "RPL903")
    scope = "local"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self.check_module(project, module)

    def check_module(self, project: Project, module: Module
                     ) -> Iterator[Finding]:
        catalog = find_catalog(project)
        if catalog is None:
            return
        if module is catalog.module:
            yield from self._check_readme(project, catalog)
            return
        yield from self._check_record_sites(catalog, module)
        if self._is_render_module(catalog, module):
            yield from self._check_render_drift(catalog, module)

    def environment(self, project: Project) -> str:
        """Extra cache-key material: these findings depend on the
        catalog source and the README table, not just the module."""
        catalog = project.find_module("obs/catalog.py")
        parts = [catalog.source if catalog is not None else ""]
        readme = _find_readme(project.root)
        parts.append(readme.read_text() if readme is not None else "")
        return "\n\x00".join(parts)

    # -- RPL901/RPL902: record sites ----------------------------------

    def _check_record_sites(self, catalog: Catalog, module: Module
                            ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) \
                    or func.attr not in _RECORDERS:
                continue
            expected = _RECORDERS[func.attr]
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Constant) \
                    and isinstance(name_arg.value, str):
                name = name_arg.value
                if not _METRIC_SHAPED.match(name):
                    continue  # not a metric-shaped string at all
                declared = catalog.kind_of(name)
                if declared is None:
                    yield Finding(
                        path=str(module.path), line=name_arg.lineno,
                        code="RPL901",
                        message=f"metric {name!r} is not declared in "
                                "the catalog (obs/catalog.py); add it "
                                "to STATIC_METRICS or fix the typo")
                elif declared != expected:
                    yield Finding(
                        path=str(module.path), line=name_arg.lineno,
                        code="RPL901",
                        message=f"metric {name!r} is declared as a "
                                f"{declared} but recorded via "
                                f".{func.attr}(); one of the two is "
                                "wrong")
            elif isinstance(name_arg, ast.JoinedStr):
                template = _fstring_template(name_arg)
                if template is None \
                        or not _METRIC_SHAPED.match(template):
                    continue
                declared = catalog.family_kind(template)
                if declared is None:
                    yield Finding(
                        path=str(module.path), line=name_arg.lineno,
                        code="RPL902",
                        message=f"dynamic metric name reduces to "
                                f"{template!r}, which is not a "
                                "declared family in METRIC_FAMILIES "
                                "(obs/catalog.py)")
                elif declared != expected:
                    yield Finding(
                        path=str(module.path), line=name_arg.lineno,
                        code="RPL902",
                        message=f"family {template!r} is declared as "
                                f"a {declared} but recorded via "
                                f".{func.attr}()")

    # -- RPL903: renderer drift ---------------------------------------

    @staticmethod
    def _is_render_module(catalog: Catalog, module: Module) -> bool:
        package = catalog.module.rel_path.rsplit("/", 1)[0]
        return module.rel_path.startswith(package + "/") \
            and module.rel_path != catalog.module.rel_path \
            and not module.is_package

    def _check_render_drift(self, catalog: Catalog, module: Module
                            ) -> Iterator[Finding]:
        for node in _drift_candidates(module.tree):
            name: Optional[str] = None
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, str):
                name = node.value
            elif isinstance(node, ast.JoinedStr):
                name = _fstring_template(node)
            if not name:
                continue
            if self._resolves(catalog, name):
                continue
            yield Finding(
                path=str(module.path), line=node.lineno,
                code="RPL903",
                message=f"{name!r} looks like a metric name but "
                        "matches no catalog entry: the renderer and "
                        "the recorders have drifted apart")

    @staticmethod
    def _resolves(catalog: Catalog, name: str) -> bool:
        """Does a renderer-side string agree with the catalog?  Full
        names must be declared; ``"serve."``-style prefixes and
        ``".chunk_s"``-style suffixes must match some entry; anything
        not metric-shaped is not checked."""
        if name.startswith("."):
            body = name[1:]
            if _METRIC_SHAPED.match(body) or body.replace("_", "") \
                    .isalnum():
                return catalog.covers_suffix(name)
            return True
        if name.endswith(".") and _METRIC_SHAPED.match(name[:-1] + ".x"):
            return catalog.covers_prefix(name)
        if not _METRIC_SHAPED.match(name):
            return True
        if catalog.kind_of(name) is not None:
            return True
        # A leading fragment of a family ("executor.w" against
        # "executor.w*.chunk_s") is prefix use, not drift.
        return any(entry.startswith(name)
                   for entry in catalog.entries())

    # -- RPL903: README drift -----------------------------------------

    def _check_readme(self, project: Project, catalog: Catalog
                      ) -> Iterator[Finding]:
        readme = _find_readme(project.root)
        if readme is None:
            return
        rows = _readme_rows(readme.read_text())
        if rows is None:
            return
        declared = catalog.entries()
        listed: Dict[str, str] = {}
        path = str(catalog.module.path)
        for line, name, kind in rows:
            listed[name] = kind
            if name not in declared:
                yield Finding(
                    path=path, line=catalog.decl_line, code="RPL903",
                    message=f"README metric table line {line} lists "
                            f"{name!r}, which the catalog does not "
                            "declare")
            elif declared[name] != kind:
                yield Finding(
                    path=path, line=catalog.decl_line, code="RPL903",
                    message=f"README metric table line {line} calls "
                            f"{name!r} a {kind}; the catalog declares "
                            f"a {declared[name]}")
        for name in declared:
            if name not in listed:
                yield Finding(
                    path=path, line=catalog.decl_line, code="RPL903",
                    message=f"catalog entry {name!r} is missing from "
                            "the README metric table (between the "
                            "lint:metric-catalog markers)")
