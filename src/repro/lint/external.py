"""Adapters for the external tools (``ruff``, ``mypy``).

Both run under the same ``repro lint`` entry point so there is exactly
one gate to pass, but neither is a hard dependency: availability is
probed first (the import machinery, not a subprocess failure), and a
missing tool degrades to a note in the report — the custom checkers
still run.  CI installs both, so the full gate applies there; a bare
container only loses the external findings.

The tools' configuration lives in ``pyproject.toml`` (``[tool.ruff]``,
``[tool.mypy]``); these adapters only invoke and parse.
"""

from __future__ import annotations

import importlib.util
import re
import subprocess
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from .findings import Finding

#: ``path:line:col: CODE message`` (ruff concise output).
_RUFF_LINE = re.compile(
    r"^(?P<path>.+?):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<code>[A-Z]+\d+)\s+(?P<msg>.*)$")

#: ``path:line: error: message  [code]`` (mypy default output).
_MYPY_LINE = re.compile(
    r"^(?P<path>.+?):(?P<line>\d+)(?::(?P<col>\d+))?:\s+"
    r"(?P<severity>error|warning|note):\s+(?P<msg>.*?)"
    r"(?:\s+\[(?P<code>[a-z0-9-]+)\])?$")


def _available(module_name: str) -> bool:
    try:
        return importlib.util.find_spec(module_name) is not None
    except (ImportError, ValueError):
        return False


def _run(argv: List[str], cwd: Optional[Path]) -> Tuple[str, str, int]:
    proc = subprocess.run(
        argv, cwd=cwd, capture_output=True, text=True, check=False)
    return proc.stdout, proc.stderr, proc.returncode


def run_ruff(roots: List[Path],
             config_dir: Optional[Path] = None
             ) -> Tuple[List[Finding], List[str]]:
    """Run ruff over ``roots``; ``(findings, notes)``.

    A missing tool or a crash (exit code other than 0/1) is a note,
    never an exception — the custom checkers must not be hostage to the
    external ones.
    """
    if not _available("ruff"):
        return [], ["ruff not installed; skipping ruff checks "
                    "(CI runs them)"]
    argv = [sys.executable, "-m", "ruff", "check",
            "--output-format", "concise",
            *[str(root) for root in roots]]
    stdout, stderr, returncode = _run(argv, config_dir)
    if returncode not in (0, 1):
        return [], [f"ruff failed (exit {returncode}): "
                    f"{stderr.strip().splitlines()[-1] if stderr.strip() else 'no output'}"]
    findings: List[Finding] = []
    for raw in stdout.splitlines():
        match = _RUFF_LINE.match(raw.strip())
        if match is None:
            continue
        findings.append(Finding(
            path=match.group("path"), line=int(match.group("line")),
            code=match.group("code"), message=match.group("msg"),
            tool="ruff", column=int(match.group("col"))))
    return findings, []


def run_mypy(roots: List[Path],
             config_dir: Optional[Path] = None
             ) -> Tuple[List[Finding], List[str]]:
    """Run mypy over ``roots``; ``(findings, notes)`` — same
    degradation contract as :func:`run_ruff`."""
    if not _available("mypy"):
        return [], ["mypy not installed; skipping mypy checks "
                    "(CI runs them)"]
    argv = [sys.executable, "-m", "mypy", "--no-error-summary",
            *[str(root) for root in roots]]
    stdout, stderr, returncode = _run(argv, config_dir)
    if returncode not in (0, 1):
        return [], [f"mypy failed (exit {returncode}): "
                    f"{stderr.strip().splitlines()[-1] if stderr.strip() else 'no output'}"]
    findings: List[Finding] = []
    for raw in stdout.splitlines():
        match = _MYPY_LINE.match(raw.strip())
        if match is None or match.group("severity") != "error":
            continue
        findings.append(Finding(
            path=match.group("path"), line=int(match.group("line")),
            code=match.group("code") or "error",
            message=match.group("msg"), tool="mypy",
            column=int(match.group("col") or 0)))
    return findings, []


def run_external(roots: List[Path],
                 config_dir: Optional[Path] = None
                 ) -> Tuple[List[Finding], List[str]]:
    """Both external tools; combined ``(findings, notes)``."""
    findings: List[Finding] = []
    notes: List[str] = []
    for runner in (run_ruff, run_mypy):
        tool_findings, tool_notes = runner(roots, config_dir)
        findings.extend(tool_findings)
        notes.extend(tool_notes)
    return findings, notes


def external_tools_status() -> Iterator[Tuple[str, bool]]:
    """``(tool, available)`` for each external tool — for ``--json``
    metadata and the availability tests."""
    for tool in ("ruff", "mypy"):
        yield tool, _available(tool)
