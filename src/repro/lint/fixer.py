"""Autofixes for the mechanical finding codes (``repro lint --fix``).

Three families are mechanical enough to rewrite safely; everything
else stays report-only:

* **RPL201** — a single-line mutable parameter default becomes a
  ``None`` sentinel, with an ``if param is None: param = <original>``
  guard inserted at the top of the body (after the docstring).
* **RPL501** — a single-argument ``print(x)`` becomes
  ``diagnostics.note(x)``, importing ``repro.util.diagnostics`` once
  if the module does not already.
* **RPL601** — ``<alias>.time()`` becomes ``<alias>.perf_counter()``;
  a ``from time import time`` rewires to ``perf_counter`` along with
  its bare call sites (``... as clock`` aliases rewire the import
  only — the call sites already use the alias).

Every fix is **idempotent** by construction: the rewritten form no
longer matches its checker, so a second ``--fix`` run is a no-op (CI
asserts exactly that).  Lines carrying a ``# lint: ignore[...]`` for
the code keep their text — a suppression is an explicit human
decision the fixer must not overrule.  Anything the span arithmetic
cannot rewrite safely (multi-line defaults, ``print`` with keywords,
starred args, one-liner function bodies) is left for the report.

:func:`fix_paths` computes :class:`ModuleFixes` per changed file;
``--diff`` renders them as unified diffs, plain ``--fix`` writes them
back.
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .findings import suppressed_codes
from .mutable_defaults import describe_mutable
from .no_print import is_print_exempt
from .project import Module, Project
from .timing import is_timing_exempt, time_aliases

#: Codes ``--fix`` can rewrite (the ``--list-codes`` autofix column).
FIXABLE_CODES = ("RPL201", "RPL501", "RPL601")


@dataclass
class _Edit:
    """Replace ``[col, end_col)`` of 0-based ``line`` with ``text``."""

    line: int
    col: int
    end_col: int
    text: str


@dataclass
class _Insertion:
    """Insert ``lines`` before 0-based line ``before``."""

    before: int
    lines: List[str]


@dataclass
class ModuleFixes:
    """One module's rewrite: original and fixed text, per-code counts."""

    path: Path
    original: str
    fixed: str
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        return self.fixed != self.original

    def diff(self, relative_to: Optional[Path] = None) -> str:
        shown = str(self.path)
        if relative_to is not None:
            try:
                shown = str(self.path.resolve()
                            .relative_to(relative_to.resolve()))
            except ValueError:
                pass
        lines = difflib.unified_diff(
            self.original.splitlines(keepends=True),
            self.fixed.splitlines(keepends=True),
            fromfile=f"a/{shown}", tofile=f"b/{shown}")
        return "".join(lines)

    def write(self) -> None:
        self.path.write_text(self.fixed)


def _single_line(node: ast.AST) -> bool:
    return getattr(node, "end_lineno", None) == node.lineno


def _suppressed(module: Module, line: int, code: str) -> bool:
    suppression = suppressed_codes(module.line(line))
    return suppression is not None \
        and (not suppression.codes or code in suppression.codes)


def _span_text(module: Module, node: ast.AST) -> str:
    return module.lines[node.lineno - 1][
        node.col_offset:node.end_col_offset]


class _ModuleFixer:
    def __init__(self, module: Module,
                 codes: Sequence[str]) -> None:
        self.module = module
        self.codes = codes
        self.edits: List[_Edit] = []
        self.insertions: List[_Insertion] = []
        self.counts: Dict[str, int] = {}

    def run(self) -> Optional[ModuleFixes]:
        if "RPL201" in self.codes:
            self._fix_mutable_defaults()
        if "RPL501" in self.codes:
            self._fix_prints()
        if "RPL601" in self.codes:
            self._fix_wall_clock()
        if not self.edits and not self.insertions:
            return None
        return ModuleFixes(
            path=self.module.path, original=self.module.source,
            fixed=self._apply(), counts=dict(sorted(
                self.counts.items())))

    def _count(self, code: str) -> None:
        self.counts[code] = self.counts.get(code, 0) + 1

    def _edit_node(self, node: ast.AST, text: str, code: str) -> bool:
        """Queue a span replacement; False when unsafe/suppressed."""
        if not _single_line(node) \
                or _suppressed(self.module, node.lineno, code):
            return False
        self.edits.append(_Edit(node.lineno - 1, node.col_offset,
                                node.end_col_offset, text))
        return True

    # -- RPL201: mutable parameter defaults ---------------------------

    def _fix_mutable_defaults(self) -> None:
        for fn in ast.walk(self.module.tree):
            if not isinstance(fn, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                continue  # lambdas have no body to guard in
            self._fix_function_defaults(fn)

    def _fix_function_defaults(self, fn) -> None:
        args = fn.args
        positional = args.posonlyargs + args.args
        pairs = list(zip(positional[len(positional)
                                    - len(args.defaults):],
                         args.defaults))
        pairs += [(arg, default) for arg, default
                  in zip(args.kwonlyargs, args.kw_defaults)
                  if default is not None]
        fixable: List[Tuple[str, ast.expr]] = []
        for arg, default in pairs:
            if describe_mutable(default) is None:
                continue
            if not _single_line(default) \
                    or _suppressed(self.module, default.lineno,
                                   "RPL201"):
                continue
            fixable.append((arg.arg, default))
        if not fixable:
            return
        body = fn.body
        sig_end = max([fn.lineno]
                      + [node.end_lineno or node.lineno
                         for _, node in pairs]
                      + ([fn.returns.end_lineno]
                         if fn.returns is not None
                         and fn.returns.end_lineno else []))
        if body[0].lineno <= sig_end:
            return  # one-liner body: no line to insert guards at
        docstring = (isinstance(body[0], ast.Expr)
                     and isinstance(body[0].value, ast.Constant)
                     and isinstance(body[0].value.value, str))
        anchor = body[1] if docstring and len(body) > 1 else body[0]
        if docstring and len(body) == 1:
            before = (body[0].end_lineno or body[0].lineno)
            indent = " " * body[0].col_offset
        else:
            before = anchor.lineno - 1
            indent = " " * anchor.col_offset
        guards: List[str] = []
        for name, default in fixable:
            original = _span_text(self.module, default)
            self._edit_node(default, "None", "RPL201")
            guards.append(f"{indent}if {name} is None:")
            guards.append(f"{indent}    {name} = {original}")
            self._count("RPL201")
        self.insertions.append(_Insertion(before, guards))

    # -- RPL501: print in library code --------------------------------

    def _fix_prints(self) -> None:
        if is_print_exempt(self.module):
            return
        imported = self._has_diagnostics_import()
        fixed_any = False
        for node in ast.walk(self.module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                continue
            if node.keywords or len(node.args) != 1 \
                    or isinstance(node.args[0], ast.Starred):
                continue
            if self._edit_node(node.func, "diagnostics.note",
                               "RPL501"):
                self._count("RPL501")
                fixed_any = True
        if fixed_any and not imported:
            self.insertions.append(_Insertion(
                self._import_anchor(),
                ["from repro.util import diagnostics"]))

    def _has_diagnostics_import(self) -> bool:
        for node in self.module.tree.body:
            if isinstance(node, ast.ImportFrom):
                if any(alias.name == "diagnostics"
                       for alias in node.names):
                    return True
            elif isinstance(node, ast.Import):
                if any(alias.name.endswith(".diagnostics")
                       for alias in node.names):
                    return True
        return False

    def _import_anchor(self) -> int:
        """0-based line to insert an import before: after the last
        top-level import, else after the module docstring."""
        anchor = 0
        body = self.module.tree.body
        if body and isinstance(body[0], ast.Expr) \
                and isinstance(body[0].value, ast.Constant) \
                and isinstance(body[0].value.value, str):
            anchor = body[0].end_lineno or body[0].lineno
        for node in body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                anchor = max(anchor, node.end_lineno or node.lineno)
        return anchor

    # -- RPL601: wall-clock timing ------------------------------------

    def _fix_wall_clock(self) -> None:
        if is_timing_exempt(self.module):
            return
        modules, functions = time_aliases(self.module.tree)
        if not modules and not functions:
            return
        #: Bare names that must rewire at the call sites too (no
        #: ``as`` alias shielding them).
        bare = set()
        for node in self.module.tree.body:
            if isinstance(node, ast.ImportFrom) \
                    and node.module == "time" and node.level == 0:
                for alias in node.names:
                    if alias.name != "time":
                        continue
                    text = "perf_counter" if alias.asname is None \
                        else f"perf_counter as {alias.asname}"
                    if self._edit_node(alias, text, "RPL601"):
                        if alias.asname is None:
                            bare.add("time")
                        else:
                            self._count("RPL601")
        for node in ast.walk(self.module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr == "time" \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in modules:
                if self._edit_node(
                        func, f"{func.value.id}.perf_counter",
                        "RPL601"):
                    self._count("RPL601")
            elif isinstance(func, ast.Name) and func.id in bare:
                if self._edit_node(func, "perf_counter", "RPL601"):
                    self._count("RPL601")

    # -- apply ---------------------------------------------------------

    def _apply(self) -> str:
        lines = list(self.module.lines)
        for edit in sorted(self.edits,
                           key=lambda e: (e.line, e.col),
                           reverse=True):
            line = lines[edit.line]
            lines[edit.line] = (line[:edit.col] + edit.text
                                + line[edit.end_col:])
        for insertion in sorted(self.insertions,
                                key=lambda i: i.before,
                                reverse=True):
            lines[insertion.before:insertion.before] = insertion.lines
        text = "\n".join(lines)
        if self.module.source.endswith("\n"):
            text += "\n"
        return text


def fix_module(module: Module,
               codes: Optional[Sequence[str]] = None
               ) -> Optional[ModuleFixes]:
    """Compute (not write) this module's fixes; ``None`` when clean."""
    return _ModuleFixer(module, codes or FIXABLE_CODES).run()


def fix_paths(roots: Sequence[Path],
              codes: Optional[Sequence[str]] = None
              ) -> List[ModuleFixes]:
    """Compute fixes for every module under ``roots`` (deduplicated),
    in deterministic path order.  Nothing is written — the caller
    decides between ``--diff`` preview and in-place rewrite."""
    seen = set()
    fixes: List[ModuleFixes] = []
    for root in roots:
        resolved = Path(root).resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        project = Project.load(resolved)
        for module in sorted(project.modules,
                             key=lambda m: m.rel_path):
            result = fix_module(module, codes)
            if result is not None and result.changed:
                fixes.append(result)
    return fixes
