"""Mutable-default checker (RPL201/RPL202).

The exact bug class PR 4 fixed by hand across the repo: a function
default of ``[]``/``{}``/``set()``/``np.zeros(...)`` is evaluated once
and shared by every call, and a dataclass field defaulting to a mutable
object is shared by every instance.  Python itself only rejects the
narrowest dataclass case (literal ``list``/``dict``/``set`` defaults,
at class-creation time); ``field(default=[])``, ndarray defaults, and
plain function defaults all slip through — this checker rejects them
all, statically, anywhere under the linted tree.

* RPL201 — a function/lambda parameter default that is a mutable
  container literal, a comprehension, or a call to a known mutable
  constructor (``list``/``dict``/``set``/``bytearray``/
  ``collections.*``/``np.zeros``-family);
* RPL202 — a dataclass field whose default (direct or via
  ``field(default=...)``) is one of the same; the fix is
  ``field(default_factory=...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .findings import Finding
from .project import Module, Project

#: Bare-name constructors returning a fresh mutable container.
_MUTABLE_BUILTINS = {"list", "dict", "set", "bytearray"}

#: ``module.attr`` (or imported-name) constructors of mutable objects.
_MUTABLE_FACTORY_NAMES = {
    "defaultdict", "OrderedDict", "Counter", "deque", "ChainMap",
}

#: numpy array constructors (``np.X``/``numpy.X`` or imported bare).
_NDARRAY_FACTORIES = {
    "zeros", "ones", "empty", "full", "array", "asarray", "arange",
    "zeros_like", "ones_like", "empty_like", "full_like",
}

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)


def describe_mutable(node: ast.expr) -> Optional[str]:
    """A short label when ``node`` evaluates to a shared mutable
    object, else ``None``."""
    if isinstance(node, _MUTABLE_LITERALS):
        return {ast.List: "list literal", ast.Dict: "dict literal",
                ast.Set: "set literal"}.get(
                    type(node), "comprehension")
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        name = func.id
        if name in _MUTABLE_BUILTINS or name in _MUTABLE_FACTORY_NAMES:
            return f"{name}()"
        if name in _NDARRAY_FACTORIES:
            return f"{name}() (ndarray)"
        return None
    if isinstance(func, ast.Attribute):
        attr = func.attr
        base = func.value
        base_name = base.id if isinstance(base, ast.Name) else None
        if attr in _MUTABLE_FACTORY_NAMES:
            return f"{base_name or '...'}.{attr}()"
        if attr in _NDARRAY_FACTORIES and base_name in ("np", "numpy"):
            return f"{base_name}.{attr}() (ndarray)"
    return None


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) \
                and target.attr == "dataclass":
            return True
    return False


def _field_default(value: ast.expr) -> Optional[ast.expr]:
    """The effective default expression of a dataclass field value:
    the value itself, or ``field(default=...)``'s argument.  ``None``
    for ``field(default_factory=...)`` — that is the sanctioned form."""
    if isinstance(value, ast.Call):
        target = value.func
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None)
        if name == "field":
            for keyword in value.keywords:
                if keyword.arg == "default":
                    return keyword.value
            return None
    return value


class MutableDefaultChecker:
    """RPL201/RPL202 over every module of the tree."""

    codes = ("RPL201", "RPL202")
    scope = "local"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self.check_module(project, module)

    def check_module(self, project: Project, module: Module
                     ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                for item in node.body:
                    yield from self._check_field(module, node, item)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                yield from self._check_function(module, node)

    def _check_function(self, module: Module, fn) -> Iterator[Finding]:
        name = getattr(fn, "name", "<lambda>")
        defaults = list(fn.args.defaults) + [
            default for default in fn.args.kw_defaults
            if default is not None]
        for default in defaults:
            label = describe_mutable(default)
            if label is not None:
                yield Finding(
                    path=str(module.path), line=default.lineno,
                    code="RPL201",
                    message=f"{name}() parameter defaults to {label}; "
                            "the default is evaluated once and shared "
                            "by every call — default to None and "
                            "construct per call")

    def _check_field(self, module: Module, cls: ast.ClassDef,
                     item: ast.stmt) -> Iterator[Finding]:
        if not isinstance(item, (ast.AnnAssign, ast.Assign)):
            return
        value = item.value
        if value is None:
            return
        default = _field_default(value)
        if default is None:
            return
        label = describe_mutable(default)
        if label is not None:
            yield Finding(
                path=str(module.path), line=item.lineno, code="RPL202",
                message=f"dataclass {cls.name} field defaults to "
                        f"{label}; the default is shared by every "
                        "instance — use field(default_factory=...)")
