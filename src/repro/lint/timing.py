"""Wall-clock timing checker (RPL601).

``time.time()`` is the wrong clock for measuring durations: it is
subject to NTP slew and step adjustments, so an interval measured with
it can come out negative or wildly wrong — and every latency histogram
and bench gate in this project is built on measured intervals.  The
project rule: :func:`time.perf_counter` for within-process timing,
:func:`time.monotonic` for timestamps that cross a fork (queue-wait
stamps — ``perf_counter`` is per-process on some platforms).
``time.time()`` keeps a legitimate niche — epoch timestamps for
display — which none of the library code needs; tests and fixtures
are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from .findings import Finding
from .project import Module, Project

_MESSAGE = ("time.time() measures the adjustable wall clock; time "
            "with time.perf_counter() (or time.monotonic() across "
            "forks)")


def is_timing_exempt(module: Module) -> bool:
    """Test trees measure and mock clocks however they like."""
    parts = module.rel_path.split("/")
    if any(part == "tests" for part in parts[:-1]):
        return True
    name = parts[-1]
    return name.startswith("test_") or name == "conftest.py"


def time_aliases(tree: ast.AST) -> tuple:
    """``(module_aliases, function_aliases)``: names bound to the
    ``time`` module and names bound to the ``time.time`` function."""
    modules: Set[str] = set()
    functions: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    modules.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom) \
                and node.module == "time" and node.level == 0:
            for alias in node.names:
                if alias.name == "time":
                    functions.add(alias.asname or "time")
    return modules, functions


class TimingChecker:
    """RPL601 over every non-test module."""

    codes = ("RPL601",)
    scope = "local"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self.check_module(project, module)

    def check_module(self, project: Project, module: Module
                     ) -> Iterator[Finding]:
        if is_timing_exempt(module):
            return
        modules, functions = time_aliases(module.tree)
        if not modules and not functions:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr == "time" \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in modules:
                yield Finding(path=str(module.path),
                              line=node.lineno, code="RPL601",
                              message=_MESSAGE)
            elif isinstance(func, ast.Name) \
                    and func.id in functions:
                yield Finding(path=str(module.path),
                              line=node.lineno, code="RPL601",
                              message=_MESSAGE)
