"""Shared utilities for benches and examples."""

from .diagnostics import is_quiet, note, set_quiet, warn
from .tables import format_table, paper_vs_measured

__all__ = ["format_table", "is_quiet", "note", "paper_vs_measured",
           "set_quiet", "warn"]
