"""Shared utilities for benches and examples."""

from .tables import format_table, paper_vs_measured

__all__ = ["format_table", "paper_vs_measured"]
