"""Shared utilities for benches and examples."""

from .diagnostics import note, warn
from .tables import format_table, paper_vs_measured

__all__ = ["format_table", "note", "paper_vs_measured", "warn"]
