"""Shared utilities for benches and examples."""

from .diagnostics import is_quiet, note, set_quiet, warn
from .sync import (SanitizedLock, SanitizerError, maybe_sanitize_lock,
                   on_sanitize_toggle, reset_order_graph,
                   sanitize_enabled, set_sanitize)
from .tables import format_table, paper_vs_measured

__all__ = ["SanitizedLock", "SanitizerError", "format_table",
           "is_quiet", "maybe_sanitize_lock", "note",
           "on_sanitize_toggle", "paper_vs_measured",
           "reset_order_graph", "sanitize_enabled", "set_quiet",
           "set_sanitize", "warn"]
