"""The one stderr diagnostics channel for library code.

Library modules must never ``print()``: for the serve daemon, stdout
*is* the wire, and a stray diagnostic interleaved with record output
corrupts the stream (``repro lint`` enforces this as RPL501).  Every
human-directed note from below the CLI goes through here instead —
one format, one stream, one place to redirect in tests.
"""

from __future__ import annotations

import sys


def note(message: str) -> None:
    """An informational note on stderr (``note: ...``)."""
    sys.stderr.write(f"note: {message}\n")


def warn(message: str) -> None:
    """A warning on stderr (``warning: ...``)."""
    sys.stderr.write(f"warning: {message}\n")
