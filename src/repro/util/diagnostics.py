"""The one stderr diagnostics channel for library code.

Library modules must never ``print()``: for the serve daemon, stdout
*is* the wire, and a stray diagnostic interleaved with record output
corrupts the stream (``repro lint`` enforces this as RPL501).  Every
human-directed note from below the CLI goes through here instead —
one format, one stream, one place to redirect in tests.

Verbosity is a single knob with two inputs: the ``REPRO_QUIET``
environment variable (any value except ``""``/``"0"``/``"false"``/
``"no"`` silences notes and warnings — the right form for scripts and
CI pipelines that wrap the CLI) and :func:`set_quiet` (what the
``repro --quiet`` flag calls; an explicit setting overrides the
environment).  Quiet suppresses the *advisory* channel only — errors
still raise, and record output is never touched.
"""

from __future__ import annotations

import os
import sys
from typing import Optional

#: Tri-state override: ``None`` consults ``REPRO_QUIET`` per call
#: (so monkeypatched environments behave), ``True``/``False`` pin it.
_QUIET: Optional[bool] = None

#: ``REPRO_QUIET`` values that mean "not quiet" (everything else,
#: including bare ``REPRO_QUIET=``\ *anything*, silences).
_FALSY = ("", "0", "false", "no")


def set_quiet(value: Optional[bool]) -> Optional[bool]:
    """Pin (or with ``None`` unpin) quiet mode; returns the previous
    override so tests can restore it."""
    global _QUIET
    previous = _QUIET
    _QUIET = value if value is None else bool(value)
    return previous


def is_quiet() -> bool:
    """Whether advisory diagnostics are currently suppressed."""
    if _QUIET is not None:
        return _QUIET
    return os.environ.get("REPRO_QUIET", "").lower() not in _FALSY


def note(message: str) -> None:
    """An informational note on stderr (``note: ...``)."""
    if is_quiet():
        return
    sys.stderr.write(f"note: {message}\n")


def warn(message: str) -> None:
    """A warning on stderr (``warning: ...``)."""
    if is_quiet():
        return
    sys.stderr.write(f"warning: {message}\n")
