"""ASCII table rendering shared by the benchmark harnesses.

Every bench prints the same rows/series as the paper's tables and figures;
these helpers keep that output uniform and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Cell]],
                 title: Optional[str] = None) -> str:
    """Render a fixed-width ASCII table."""
    str_rows: List[List[str]] = [[_format_cell(c) for c in row]
                                 for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i])
                            for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def paper_vs_measured(rows: Iterable[Sequence[Cell]],
                      title: Optional[str] = None,
                      metric_header: str = "metric") -> str:
    """Standard three-column report: metric, paper value, measured value."""
    return format_table((metric_header, "paper", "measured"), rows,
                        title=title)
