"""Runtime lock sanitizer — the dynamic complement to ``RPL1xxx``.

The static concurrency family (:mod:`repro.lint.concurrency`) models
locks from the AST; this module checks the same properties on the
*live* locks when ``REPRO_SANITIZE=1`` is set (or
:func:`set_sanitize` is called): every lock built through
:func:`maybe_sanitize_lock` becomes a :class:`SanitizedLock` that
asserts, at acquisition time,

* **no double acquire** — the owning thread re-entering a
  non-reentrant lock would deadlock silently; the sanitizer raises
  :class:`SanitizerError` instead;
* **consistent acquisition order** — a process-wide order graph
  records ``A → B`` whenever ``B`` is acquired with ``A`` held; the
  first acquisition that closes a cycle (the RPL1003 inversion) raises
  rather than waiting for the one unlucky interleaving that deadlocks;
* **owner-only release** — releasing a lock another thread acquired
  corrupts the guard invariant and raises immediately.

:meth:`SanitizedLock.assert_owned` is the hook instrumented state uses
to assert "my lock is held by *me* right now" (the
``MetricsRegistry`` mutation assertions the concurrency stress tests
run under).

Sanitizing is off by default and costs nothing when off:
:func:`maybe_sanitize_lock` then returns the plain
``threading.Lock`` the caller would have built anyway.  Modules that
cache a lock in a global register an :func:`on_sanitize_toggle`
callback to rebuild it when tests flip the mode at runtime.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, List, Optional, Set

__all__ = [
    "SanitizedLock", "SanitizerError", "maybe_sanitize_lock",
    "on_sanitize_toggle", "reset_order_graph", "sanitize_enabled",
    "set_sanitize",
]


class SanitizerError(AssertionError):
    """A concurrency invariant the sanitizer watches was violated."""


def _env_enabled() -> bool:
    return os.environ.get("REPRO_SANITIZE", "") not in (
        "", "0", "false", "False", "no")


#: Process-wide sanitize flag (seeded from ``REPRO_SANITIZE``).
_SANITIZE = _env_enabled()

#: Callbacks run when the flag flips (modules rebuild cached locks).
_TOGGLE_CALLBACKS: List[Callable[[], None]] = []

#: Names of sanitized locks the current thread holds, innermost last.
_HELD = threading.local()

#: The acquisition-order graph: ``name -> {names acquired while name
#: was held}``.  Guarded by its own plain lock (never sanitized —
#: the watcher must not watch itself).
_ORDER_LOCK = threading.Lock()
_ORDER_EDGES: Dict[str, Set[str]] = {}


def sanitize_enabled() -> bool:
    """Whether sanitize mode is currently on."""
    return _SANITIZE


def set_sanitize(enabled: bool) -> bool:
    """Flip sanitize mode process-wide; returns the previous value.

    Runs the registered toggle callbacks on a real flip so modules
    holding a cached lock (the metrics registry) swap it for a
    sanitized/plain one.
    """
    global _SANITIZE
    previous = _SANITIZE
    _SANITIZE = bool(enabled)
    if previous != _SANITIZE:
        for callback in list(_TOGGLE_CALLBACKS):
            callback()
    return previous


def on_sanitize_toggle(callback: Callable[[], None]) -> None:
    """Run ``callback`` whenever :func:`set_sanitize` flips the mode."""
    _TOGGLE_CALLBACKS.append(callback)


def reset_order_graph() -> None:
    """Forget every recorded acquisition-order edge (test isolation)."""
    with _ORDER_LOCK:
        _ORDER_EDGES.clear()


def _held_names() -> List[str]:
    names = getattr(_HELD, "names", None)
    if names is None:
        names = _HELD.names = []
    return names


class SanitizedLock:
    """A non-reentrant lock that asserts sanity at every transition.

    Context-manager compatible with ``threading.Lock`` so it can be
    swapped in anywhere a plain lock is used.
    """

    __slots__ = ("name", "_lock", "_owner")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._owner: Optional[int] = None

    # -- checks --------------------------------------------------------

    def owned(self) -> bool:
        """Is the calling thread the current owner?"""
        return self._owner == threading.get_ident()

    def assert_owned(self, what: str = "guarded state") -> None:
        """Raise unless the calling thread holds this lock — the
        mutation-site assertion instrumented code calls."""
        if not self.owned():
            raise SanitizerError(
                f"{what} touched without holding lock "
                f"{self.name!r} (thread "
                f"{threading.current_thread().name})")

    def _check_order(self) -> None:
        held = _held_names()
        if not held:
            return
        with _ORDER_LOCK:
            reachable_from_me = _ORDER_EDGES.get(self.name, set())
            for prior in held:
                if prior in reachable_from_me:
                    raise SanitizerError(
                        f"lock-order inversion: acquiring "
                        f"{self.name!r} while holding {prior!r}, but "
                        f"{prior!r} has been acquired while "
                        f"{self.name!r} was held — two threads can "
                        "deadlock (RPL1003 at runtime)")
                _ORDER_EDGES.setdefault(prior, set()).add(self.name)

    # -- the lock protocol ---------------------------------------------

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        if self.owned():
            raise SanitizerError(
                f"double acquire of non-reentrant lock {self.name!r} "
                f"by thread {threading.current_thread().name} — this "
                "deadlocks outside sanitize mode")
        self._check_order()
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            _held_names().append(self.name)
        return acquired

    def release(self) -> None:
        if not self.owned():
            raise SanitizerError(
                f"release of lock {self.name!r} by thread "
                f"{threading.current_thread().name}, which does not "
                "own it")
        self._owner = None
        held = _held_names()
        if held and held[-1] == self.name:
            held.pop()
        elif self.name in held:
            held.remove(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "locked" if self.locked() else "unlocked"
        return f"SanitizedLock({self.name!r}, {state})"


def maybe_sanitize_lock(name: str, lock=None):
    """The lock concurrency-sensitive modules should build: a
    :class:`SanitizedLock` when sanitize mode is on, else ``lock``
    (or a fresh plain ``threading.Lock``)."""
    if _SANITIZE:
        return SanitizedLock(name)
    return lock if lock is not None else threading.Lock()
