"""Per-stage wall-clock accounting for the baseline mapper (Fig 1).

The paper's first experiment profiles where Minimap2 spends its time on
paired-end data (chaining + alignment: 83-85%).  :class:`StageTimer` is a
tiny accumulator the mapper wraps around each pipeline stage so that the
Fig 1 bench can print the same breakdown for the reproduction.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

#: Canonical stage names, in pipeline order.
STAGES = ("seeding", "chaining", "alignment", "pairing", "other")


@dataclass
class StageTimer:
    """Accumulates wall-clock seconds per named stage."""

    seconds: Dict[str, float] = field(
        default_factory=lambda: {stage: 0.0 for stage in STAGES})

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager timing one stage occurrence."""
        if name not in self.seconds:
            self.seconds[name] = 0.0
        start = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[name] += time.perf_counter() - start

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def breakdown_percent(self) -> Dict[str, float]:
        """Stage shares in percent (zeros preserved)."""
        total = self.total
        if total == 0:
            return {name: 0.0 for name in self.seconds}
        return {name: 100.0 * value / total
                for name, value in self.seconds.items()}

    def reset(self) -> None:
        for name in self.seconds:
            self.seconds[name] = 0.0
