"""Minimizer index over a reference genome (baseline mapper's index).

Maps each minimizer hash to the sorted global positions where it occurs.
Like Minimap2, hashes occurring more often than ``max_occurrences`` are
masked out of the index (the same heuristic family as GenPair's index
filtering threshold, §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..genome.reference import ReferenceGenome
from .minimizer import extract_minimizers


@dataclass(frozen=True)
class IndexStats:
    """Build statistics of a minimizer index."""

    total_minimizers: int
    distinct_hashes: int
    masked_hashes: int


class MinimizerIndex:
    """Hash -> sorted global positions of that minimizer."""

    def __init__(self, k: int, w: int,
                 table: Dict[int, np.ndarray],
                 stats: IndexStats) -> None:
        self.k = k
        self.w = w
        self._table = table
        self.stats = stats

    @classmethod
    def build(cls, reference: ReferenceGenome, k: int = 15, w: int = 10,
              max_occurrences: Optional[int] = 500) -> "MinimizerIndex":
        """Build the index across all chromosomes."""
        collected: Dict[int, list] = {}
        total = 0
        for name in reference.names:
            codes = reference.fetch(name, 0, reference.length(name))
            offset = reference.linear_offset(name)
            for minimizer in extract_minimizers(codes, k, w):
                collected.setdefault(minimizer.hash_value, []).append(
                    minimizer.position + offset)
                total += 1
        table: Dict[int, np.ndarray] = {}
        masked = 0
        for hash_value, positions in collected.items():
            if max_occurrences is not None and \
                    len(positions) > max_occurrences:
                masked += 1
                continue
            table[hash_value] = np.array(sorted(positions), dtype=np.int64)
        stats = IndexStats(total_minimizers=total,
                           distinct_hashes=len(table),
                           masked_hashes=masked)
        return cls(k, w, table, stats)

    def lookup(self, hash_value: int) -> np.ndarray:
        """Sorted global positions for a hash (empty array if absent)."""
        positions = self._table.get(int(hash_value))
        if positions is None:
            return np.zeros(0, dtype=np.int64)
        return positions

    def __len__(self) -> int:
        return len(self._table)
