"""Baseline software mapper ("MM2"): minimizer seed-chain-align pipeline."""

from .index import IndexStats, MinimizerIndex
from .minimizer import Minimizer, extract_minimizers
from .mm2 import (MapperConfig, MapperStats, Mm2LikeMapper,
                  make_full_fallback)
from .profiler import STAGES, StageTimer

__all__ = [
    "IndexStats", "MapperConfig", "MapperStats", "Minimizer",
    "MinimizerIndex", "Mm2LikeMapper", "STAGES", "StageTimer",
    "extract_minimizers", "make_full_fallback",
]
