"""Seed-chain-align baseline mapper (the evaluation's "MM2").

A compact reimplementation of the Minimap2 short-read pipeline the paper
profiles and compares against: minimizer seeding, O(n·lookback) chaining
DP, banded affine-gap alignment, and paired-end resolution with mate
rescue.  It serves three roles:

* the software baseline of Fig 1 (stage breakdown) and Fig 11 (CPU rows);
* the fallback engine behind "GenPair + MM2" — see :func:`make_full_fallback`;
* the accuracy reference for Table 7.

The mapper aggregates DP-cell counts for chaining and alignment separately,
which is exactly the split the paper uses to size GenDP for the residual
workload (331,772 MCUPS chaining vs 3,469,180 MCUPS alignment per million
reads, §7.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..align.banded import align_banded
from ..align.chaining import Anchor, chain_anchors
from ..align.dp import AlignmentResult
from ..align.scoring import DEFAULT_SCHEME, ScoringScheme
from ..genome.cigar import Cigar
from ..genome.reference import ReferenceGenome
from ..genome.sam import METHOD_DP, AlignmentRecord
from ..genome.sequence import reverse_complement
from .index import MinimizerIndex
from .minimizer import extract_minimizers
from .profiler import StageTimer


@dataclass(frozen=True)
class MapperConfig:
    """Baseline mapper parameters (minimap2 short-read flavoured)."""

    k: int = 15
    w: int = 10
    max_occurrences: int = 500
    max_gap: int = 500
    max_chains_tried: int = 4
    bandwidth: int = 16
    window_pad: int = 32
    min_chain_score: float = 20.0
    max_insert: int = 1000
    #: Alignments below this fraction of the perfect score are unmapped.
    min_score_fraction: float = 0.4
    #: Attempt mate rescue (banded search in the insert window) when no
    #: properly-oriented combination of independent placements exists.
    mate_rescue: bool = True


@dataclass
class MapperStats:
    """DP accounting and outcome counters."""

    reads_seen: int = 0
    reads_mapped: int = 0
    pairs_seen: int = 0
    pairs_proper: int = 0
    mate_rescues: int = 0
    anchors_total: int = 0
    dp_cells_chaining: int = 0
    dp_cells_alignment: int = 0


@dataclass(frozen=True)
class _Placement:
    """Internal: one scored candidate placement of a read."""

    score: int
    linear_start: int
    strand: str
    alignment: AlignmentResult


class Mm2LikeMapper:
    """Minimizer seed-chain-align mapper with paired-end support."""

    def __init__(self, reference: ReferenceGenome,
                 index: Optional[MinimizerIndex] = None,
                 config: Optional[MapperConfig] = None,
                 scheme: ScoringScheme = DEFAULT_SCHEME,
                 timer: Optional[StageTimer] = None) -> None:
        config = config if config is not None else MapperConfig()
        self.reference = reference
        self.config = config
        self.scheme = scheme
        self.index = index if index is not None else MinimizerIndex.build(
            reference, k=config.k, w=config.w,
            max_occurrences=config.max_occurrences)
        self.timer = timer if timer is not None else StageTimer()
        self.stats = MapperStats()

    # -- single-end ----------------------------------------------------------

    def map_read(self, codes: np.ndarray, name: str = "read",
                 mate: int = 0) -> AlignmentRecord:
        """Map one read; returns an unmapped record if nothing scores."""
        self.stats.reads_seen += 1
        placements = self._placements(codes)
        min_score = int(self.config.min_score_fraction
                        * self.scheme.perfect_score(len(codes)))
        placements = [p for p in placements if p.score >= min_score]
        if not placements:
            return AlignmentRecord(query_name=name, mapped=False,
                                   read_codes=codes, mate=mate)
        best = placements[0]
        mapq = 60
        if len(placements) > 1 and placements[1].score >= best.score - 4:
            mapq = 3
        self.stats.reads_mapped += 1
        return self._to_record(best, codes, name, mate, mapq)

    # -- paired-end ----------------------------------------------------------

    def map_pair(self, read1: np.ndarray, read2: np.ndarray,
                 name: str = "pair"
                 ) -> Tuple[AlignmentRecord, AlignmentRecord, bool]:
        """Map a pair; returns (record1, record2, proper_pair).

        Strategy: fully map read 1, then place read 2 by *mate rescue* —
        a banded alignment inside the window implied by the insert-size
        constraint (both reads of a proper pair are within ``max_insert``).
        If rescue fails, read 2 is mapped independently; the final records
        are the best-scoring consistent combination.
        """
        self.stats.pairs_seen += 1
        placements1 = self._placements(read1)
        placements2 = self._placements(read2)
        with self.timer.stage("pairing"):
            combo = self._best_combo(placements1, placements2,
                                     len(read1), len(read2))
        if combo is None and self.config.mate_rescue:
            rescued = self._try_rescue(read1, read2, placements1,
                                       placements2)
            if rescued is not None:
                combo = rescued
                self.stats.mate_rescues += 1
        if combo is None:
            record1 = self._best_single(placements1, read1, f"{name}/1", 1)
            record2 = self._best_single(placements2, read2, f"{name}/2", 2)
            return record1, record2, False
        place1, place2 = combo
        self.stats.pairs_proper += 1
        self.stats.reads_mapped += 2
        record1 = self._to_record(place1, read1, f"{name}/1", 1, 60)
        record2 = self._to_record(place2, read2, f"{name}/2", 2, 60)
        record1.set_mate(record2)
        record2.set_mate(record1)
        return record1, record2, True

    # -- batched entry points ------------------------------------------------

    def map_pairs(self, pairs: List[Tuple[np.ndarray, np.ndarray, str]]
                  ) -> List[Tuple[AlignmentRecord, AlignmentRecord, bool]]:
        """Map a chunk of ``(read1, read2, name)`` tuples in input order.

        The batched entry point the engine-polymorphic API streams
        chunks through; statistics accumulate in :attr:`stats` exactly
        as repeated :meth:`map_pair` calls would.
        """
        return [self.map_pair(read1, read2, name)
                for read1, read2, name in pairs]

    def map_reads(self, reads: List[Tuple[np.ndarray, str]]
                  ) -> List[AlignmentRecord]:
        """Map a chunk of single ``(codes, name)`` reads in input order."""
        return [self.map_read(codes, name) for codes, name in reads]

    # -- pipeline stages -----------------------------------------------------

    def _placements(self, codes: np.ndarray,
                    max_placements: int = 4) -> List[_Placement]:
        """Seed, chain, and align one read on both strands."""
        with self.timer.stage("seeding"):
            anchors_fwd = self._anchors(codes)
            rc = reverse_complement(codes)
            anchors_rev = self._anchors(rc)
            self.stats.anchors_total += len(anchors_fwd) + len(anchors_rev)
        with self.timer.stage("chaining"):
            chains = []
            result_fwd = chain_anchors(anchors_fwd,
                                       max_gap=self.config.max_gap,
                                       min_score=self.config.min_chain_score)
            result_rev = chain_anchors(anchors_rev,
                                       max_gap=self.config.max_gap,
                                       min_score=self.config.min_chain_score)
            self.stats.dp_cells_chaining += (result_fwd.cells
                                             + result_rev.cells)
            chains.extend(("+", chain) for chain in result_fwd.chains)
            chains.extend(("-", chain) for chain in result_rev.chains)
            chains.sort(key=lambda item: -item[1].score)
        placements: List[_Placement] = []
        with self.timer.stage("alignment"):
            for strand, chain in chains[:self.config.max_chains_tried]:
                oriented = codes if strand == "+" else rc
                placement = self._align_chain(oriented, strand, chain)
                if placement is not None:
                    placements.append(placement)
        placements.sort(key=lambda p: -p.score)
        return placements[:max_placements]

    def _anchors(self, codes: np.ndarray) -> List[Anchor]:
        anchors: List[Anchor] = []
        for minimizer in extract_minimizers(codes, self.config.k,
                                            self.config.w):
            for position in self.index.lookup(minimizer.hash_value
                                              ).tolist():
                anchors.append(Anchor(ref_pos=position,
                                      read_pos=minimizer.position,
                                      length=self.config.k))
        return anchors

    def _align_chain(self, oriented: np.ndarray, strand: str, chain
                     ) -> Optional[_Placement]:
        """Banded alignment in the window implied by a chain."""
        implied_start = chain.diagonal
        window = self._window(implied_start, len(oriented))
        if window is None:
            return None
        ref_window, offset, window_start = window
        result = align_banded(oriented, ref_window, scheme=self.scheme,
                              diagonal=offset,
                              bandwidth=self.config.bandwidth)
        self.stats.dp_cells_alignment += result.cells
        if result.score < 0:
            return None
        return _Placement(score=result.score,
                          linear_start=window_start + result.ref_start,
                          strand=strand, alignment=result)

    def _window(self, linear_start: int, read_length: int):
        """Reference window around an implied start, clamped in-chromosome."""
        pad = self.config.window_pad
        try:
            chromosome, pos = self.reference.from_linear(
                max(0, int(linear_start)))
        except Exception:
            return None
        chrom_len = self.reference.length(chromosome)
        start = max(0, pos - pad)
        end = min(chrom_len, pos + read_length + pad)
        if end - start < read_length // 2:
            return None
        window = self.reference.fetch(chromosome, start, end)
        window_linear = self.reference.linear_offset(chromosome) + start
        return window, pos - start, window_linear

    # -- pairing -------------------------------------------------------------

    def _best_combo(self, placements1: List[_Placement],
                    placements2: List[_Placement], len1: int, len2: int
                    ) -> Optional[Tuple[_Placement, _Placement]]:
        """Best properly-oriented combination within the insert bound."""
        best = None
        for place1 in placements1:
            for place2 in placements2:
                if not self._proper(place1, place2, len1):
                    continue
                score = place1.score + place2.score
                if best is None or score > best[0]:
                    best = (score, (place1, place2))
        return None if best is None else best[1]

    def _proper(self, place1: _Placement, place2: _Placement,
                read_length: int) -> bool:
        if place1.strand == place2.strand:
            return False
        if place1.strand == "+":
            gap = place2.linear_start - place1.linear_start
        else:
            gap = place1.linear_start - place2.linear_start
        return -read_length // 2 <= gap <= self.config.max_insert

    def _try_rescue(self, read1: np.ndarray, read2: np.ndarray,
                    placements1: List[_Placement],
                    placements2: List[_Placement]
                    ) -> Optional[Tuple[_Placement, _Placement]]:
        """Rescue the unplaced mate near the placed one."""
        if placements1:
            anchor = placements1[0]
            mate = self._rescue_mate(anchor, read2)
            if mate is not None:
                return anchor, mate
        if placements2:
            anchor = placements2[0]
            mate = self._rescue_mate(anchor, read1)
            if mate is not None:
                return mate, anchor
        return None

    def _rescue_mate(self, anchor: _Placement, mate_codes: np.ndarray
                     ) -> Optional[_Placement]:
        """Banded search for the mate in the insert-size window."""
        mate_strand = "-" if anchor.strand == "+" else "+"
        oriented = (reverse_complement(mate_codes) if mate_strand == "-"
                    else mate_codes)
        if anchor.strand == "+":
            lo = anchor.linear_start
            hi = anchor.linear_start + self.config.max_insert
        else:
            lo = anchor.linear_start - self.config.max_insert
            hi = anchor.linear_start + len(mate_codes)
        try:
            chromosome, pos = self.reference.from_linear(
                max(0, int(lo)))
        except Exception:
            return None
        chrom_offset = self.reference.linear_offset(chromosome)
        chrom_len = self.reference.length(chromosome)
        start = max(0, pos)
        end = min(chrom_len, hi - chrom_offset + len(mate_codes))
        if end - start < len(mate_codes):
            return None
        window = self.reference.fetch(chromosome, start, end)
        # Wide band: the mate can sit anywhere in the insert window.
        result = align_banded(oriented, window, scheme=self.scheme,
                              diagonal=(end - start) // 2,
                              bandwidth=(end - start) // 2 + 8)
        self.stats.dp_cells_alignment += result.cells
        min_score = int(self.config.min_score_fraction
                        * self.scheme.perfect_score(len(mate_codes)))
        if result.score < min_score:
            return None
        return _Placement(score=result.score,
                          linear_start=chrom_offset + start
                          + result.ref_start,
                          strand=mate_strand, alignment=result)

    # -- record construction ---------------------------------------------

    def _best_single(self, placements: List[_Placement],
                     codes: np.ndarray, name: str,
                     mate: int) -> AlignmentRecord:
        min_score = int(self.config.min_score_fraction
                        * self.scheme.perfect_score(len(codes)))
        viable = [p for p in placements if p.score >= min_score]
        if not viable:
            return AlignmentRecord(query_name=name, mapped=False,
                                   read_codes=codes, mate=mate)
        self.stats.reads_mapped += 1
        return self._to_record(viable[0], codes, name, mate, 20)

    def _to_record(self, placement: _Placement, codes: np.ndarray,
                   name: str, mate: int, mapq: int) -> AlignmentRecord:
        chromosome, pos = self.reference.from_linear(
            placement.linear_start)
        return AlignmentRecord(query_name=name, chromosome=chromosome,
                               position=pos, strand=placement.strand,
                               mapq=mapq, cigar=placement.alignment.cigar,
                               score=placement.score, read_codes=codes,
                               mate=mate, mapped=True, method=METHOD_DP)


def make_full_fallback(mapper: Mm2LikeMapper):
    """Adapt a baseline mapper into a GenPair full-pipeline fallback.

    The returned callable satisfies
    :data:`repro.core.pipeline.FullFallback`: it maps the pair with the
    traditional seed-chain-align pipeline and reports the DP cells spent,
    so the hybrid "GenPair + MM2" / "GenPairX + GenDP" accounting stays
    correct.
    """
    def fallback(read1: np.ndarray, read2: np.ndarray, name: str):
        before = (mapper.stats.dp_cells_chaining
                  + mapper.stats.dp_cells_alignment)
        record1, record2, _proper = mapper.map_pair(read1, read2, name)
        after = (mapper.stats.dp_cells_chaining
                 + mapper.stats.dp_cells_alignment)
        if not record1.mapped and not record2.mapped:
            return None
        return record1, record2, after - before

    return fallback
