"""(w, k) minimizer extraction, as used by the Minimap2 baseline.

A minimizer is the smallest-hashed k-mer in every window of ``w``
consecutive k-mers; indexing only minimizers shrinks the index ~2/(w+1)-
fold while guaranteeing that any exact match of length ``w + k - 1``
shares one.  The baseline mapper ("MM2" in the paper's evaluation) builds
on these, in contrast to GenPair's fixed-offset 50bp partitioned seeds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List

import numpy as np

from ..hashing import hash_reference_windows


@dataclass(frozen=True)
class Minimizer:
    """One selected minimizer: k-mer hash and its start position."""

    position: int
    hash_value: int


def extract_minimizers(codes: np.ndarray, k: int = 15,
                       w: int = 10) -> List[Minimizer]:
    """Extract (w, k) minimizers from a code array.

    Uses the standard monotone-deque sliding-window minimum; consecutive
    windows sharing the same minimizer emit it once.
    """
    if k <= 0 or w <= 0:
        raise ValueError("k and w must be positive")
    if len(codes) < k:
        return []
    hashes = hash_reference_windows(codes, k).tolist()
    count = len(hashes)
    window = min(w, count)
    result: List[Minimizer] = []
    queue: deque = deque()  # indices, increasing hash order
    last_emitted = -1
    for index in range(count):
        while queue and hashes[queue[-1]] >= hashes[index]:
            queue.pop()
        queue.append(index)
        if queue[0] <= index - window:
            queue.popleft()
        if index >= window - 1:
            best = queue[0]
            if best != last_emitted:
                result.append(Minimizer(position=best,
                                        hash_value=hashes[best]))
                last_emitted = best
    return result
