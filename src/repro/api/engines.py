"""Engine adapters: one protocol, three mapping engines.

The :class:`~repro.api.Mapper` facade is engine-polymorphic: every
workload — paired-end GenPair, the mm2-like baseline, single-read
long-read voting — flows through the same ``map``/``map_stream``/
``map_file`` surface and the same :class:`~repro.genome.MappingResult`
record.  This module defines the :class:`Engine` protocol those
workloads implement and the three adapters registered in
:data:`~repro.api.registry.ENGINES`:

* :class:`GenPairEngine` (``genpair``) — the paper's pipeline, wrapping
  :class:`~repro.core.pipeline.GenPairPipeline` plus the persistent
  :class:`~repro.core.pipeline.StreamExecutor` worker pool (this is
  the only engine that fans out to forked workers; its results are
  byte-identical to the pre-polymorphic facade);
* :class:`Mm2Engine` (``mm2``) — the minimizer seed-chain-align
  baseline with paired-end support and configurable mate rescue
  (:class:`~repro.api.config.Mm2Options`); the minimizer index is
  built lazily, on engine construction;
* :class:`LongReadEngine` (``longread``) — single-read long-read
  mapping via pseudo-pairs + Location Voting
  (:class:`~repro.api.config.LongReadOptions`), sharing the facade's
  warm SeedMap so one memory-mapped index serves both GenPair and
  long-read traffic.

Engines are built lazily by the facade (one instance per engine name,
reused across runs and daemon requests) and own their per-run
statistics lifecycle: ``begin_run`` zeroes the per-run counters,
``run_stats`` returns them, and the facade folds them into per-engine
cumulative totals with :func:`merge_stats`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, List, Tuple

import numpy as np

from ..core.longread import LongReadConfig, LongReadMapper, LongReadStats
from ..core.pipeline import (GenPairPipeline, PipelineStats,
                             StreamExecutor, _fork_context)
from ..genome.results import MappingResult
from .config import MappingConfig, MappingConfigError
from .registry import ALIGNERS, FILTER_CHAINS

#: ``input_kind`` values: what one workload item is.
INPUT_PAIRED = "paired"    # (read1, read2, name) tuples / paired FASTQ
INPUT_SINGLE = "single"    # (codes, name) tuples / single-read FASTQ


def merge_stats(total, run) -> None:
    """Fold one flat integer-counter dataclass into another in place.

    The generic form of :meth:`PipelineStats.merge` — works for any
    engine's stats dataclass (``PipelineStats``, ``MapperStats``,
    ``LongReadStats``) as long as the fields are numeric.
    """
    for spec in dataclasses.fields(run):
        setattr(total, spec.name,
                getattr(total, spec.name) + getattr(run, spec.name))


def stats_dict(stats) -> dict:
    """A stats dataclass as plain JSON types (the wire/report form)."""
    return {spec.name: int(getattr(stats, spec.name))
            for spec in dataclasses.fields(stats)}


class Engine:
    """The protocol every mapping engine adapter satisfies.

    Class attributes ``name`` (the registry entry) and ``input_kind``
    (:data:`INPUT_PAIRED` or :data:`INPUT_SINGLE`); instance surface:

    * :meth:`begin_run` — zero the per-run counters (called by the
      facade at the start of every run);
    * :meth:`map_stream` — map a lazy item stream, yielding
      :class:`~repro.genome.MappingResult` in input order;
    * :meth:`finish_run` — fold any deferred counters (worker pools);
    * :meth:`run_stats` — the per-run stats dataclass;
    * :meth:`fresh_stats` — a zeroed stats dataclass of this engine's
      type (the facade's cumulative accumulator);
    * :meth:`warm_up` / :meth:`close` — resource lifecycle.
    """

    name: str = ""
    input_kind: str = INPUT_PAIRED

    def begin_run(self) -> None:
        raise NotImplementedError

    def map_stream(self, items: Iterable) -> Iterator[MappingResult]:
        raise NotImplementedError

    def finish_run(self) -> None:
        pass

    def run_stats(self):
        raise NotImplementedError

    def fresh_stats(self):
        raise NotImplementedError

    def warm_up(self) -> None:
        pass

    def close(self) -> None:
        pass


def _chunked(items: Iterable, chunk_size: int,
             normalize) -> Iterator[List]:
    """Chunk a lazy item stream through ``normalize(chunk, consumed)``.

    ``consumed`` is the running item count, so unnamed items are
    numbered globally across the whole stream — the same contract as
    ``GenPairPipeline._chunk_stream`` (synthetic names never repeat
    between chunks).
    """
    chunk: List = []
    consumed = 0
    for item in items:
        chunk.append(item)
        if len(chunk) >= chunk_size:
            yield normalize(chunk, consumed)
            consumed += len(chunk)
            chunk = []
    if chunk:
        yield normalize(chunk, consumed)


def _chunk_paired(items: Iterable, chunk_size: int
                  ) -> Iterator[List[Tuple[np.ndarray, np.ndarray, str]]]:
    """Chunk + normalize a paired-item stream (global pair numbering)."""
    return _chunked(
        items, chunk_size,
        lambda chunk, consumed: GenPairPipeline._normalize_pairs(
            chunk, first_index=consumed))


def _normalize_reads(items: Iterable, first_index: int = 0
                     ) -> List[Tuple[np.ndarray, str]]:
    """Coerce single-read inputs to ``(codes, name)`` tuples.

    Accepts what the paired normalizer accepts, one read at a time:
    ``(codes, name)`` tuples (the :func:`~repro.genome.iter_reads`
    shape), objects with ``codes``/``name`` (e.g. ``SimulatedRead``),
    and bare code arrays (named ``read{N}`` by stream position).
    """
    out: List[Tuple[np.ndarray, str]] = []
    for index, item in enumerate(items, start=first_index):
        if hasattr(item, "codes"):
            out.append((item.codes, item.name))
        elif isinstance(item, np.ndarray):
            out.append((item, f"read{index}"))
        else:
            codes = item[0]
            name = item[1] if len(item) > 1 else f"read{index}"
            out.append((codes, str(name)))
    return out


def _chunk_single(items: Iterable, chunk_size: int
                  ) -> Iterator[List[Tuple[np.ndarray, str]]]:
    """Chunk + normalize a single-read stream (global read numbering)."""
    return _chunked(
        items, chunk_size,
        lambda chunk, consumed: _normalize_reads(chunk,
                                                 first_index=consumed))


def _lazy_full_fallback(reference):
    """Full-DP fallback that defers the O(genome) minimizer-index build
    until the first pair actually needs it, so a mapper whose pairs all
    stay on the GenPair path keeps mmap-cheap startup."""
    from ..mapper import Mm2LikeMapper, make_full_fallback

    state: dict = {}

    def fallback(read1, read2, name):
        if "fn" not in state:
            state["fn"] = make_full_fallback(Mm2LikeMapper(reference))
        return state["fn"](read1, read2, name)

    return fallback


class GenPairEngine(Engine):
    """The paper's paired-end pipeline behind the Engine protocol.

    Owns the :class:`GenPairPipeline` (stage selection through the
    registries) and the lazily-created, **reused**
    :class:`StreamExecutor` worker pool — exactly the wiring the
    pre-polymorphic ``Mapper`` had inline, so ``engine="genpair"``
    output is byte-identical to the historical facade.
    """

    name = "genpair"
    input_kind = INPUT_PAIRED

    def __init__(self, facade) -> None:
        config: MappingConfig = facade.config
        chain = FILTER_CHAINS.create(config.filter_chain, config)
        # An empty chain means "screen nothing": hand the pipeline None
        # so the candidate hot path stays exactly the historical code.
        screen = chain if len(chain) else None
        aligner = ALIGNERS.create(config.aligner, config)
        full_fallback = None
        if config.full_fallback:
            if self._config_wants_pool(config):
                # Forked workers inherit a pre-fork build copy-on-write;
                # building lazily would make every worker rebuild it.
                from ..mapper import Mm2LikeMapper, make_full_fallback
                full_fallback = make_full_fallback(
                    Mm2LikeMapper(facade.reference))
            else:
                full_fallback = _lazy_full_fallback(facade.reference)
        self.config = config
        self.pipeline = GenPairPipeline(
            facade.reference, seedmap=facade.seedmap,
            config=config.genpair(), full_fallback=full_fallback,
            aligner=aligner, candidate_screen=screen)
        self._executor = None

    # -- pool lifecycle ------------------------------------------------

    @staticmethod
    def _config_wants_pool(config: MappingConfig) -> bool:
        return (config.workers > 1 and config.batch_size > 0
                and _fork_context() is not None)

    def _wants_pool(self) -> bool:
        return self._config_wants_pool(self.config)

    def _ensure_executor(self):
        if self._executor is None and self._wants_pool():
            self._executor = StreamExecutor(
                self.pipeline, workers=self.config.workers,
                chunk_size=self.config.batch_size,
                inflight=self.config.inflight)
        return self._executor

    def warm_up(self) -> None:
        self._ensure_executor()

    # -- runs ----------------------------------------------------------

    def begin_run(self) -> None:
        # Fresh per-run counters; previous totals live on in the facade.
        self.pipeline.stats = PipelineStats()

    def map_stream(self, items: Iterable) -> Iterator[MappingResult]:
        config = self.config
        executor = self._ensure_executor()
        if executor is not None:
            source = executor.map(items)
        elif config.batch_size > 0:
            source = self.pipeline.map_stream(
                items, chunk_size=config.batch_size,
                workers=config.workers if config.workers > 1 else None)
        else:
            source = self._scalar_stream(items)
        for result in source:
            yield MappingResult(name=result.name,
                                records=(result.record1, result.record2),
                                engine=self.name, stage=result.stage,
                                orientation=result.orientation,
                                joint_score=result.joint_score)

    def _scalar_stream(self, items: Iterable):
        # The scalar reference engine, with the same global
        # synthetic-name numbering as the chunked paths.
        for chunk in self.pipeline._chunk_stream(items, 1):
            for read1, read2, name in chunk:
                yield self.pipeline.map_pair(read1, read2, name)

    def finish_run(self) -> None:
        if self._executor is not None:
            self._executor.fold_stats()

    def run_stats(self) -> PipelineStats:
        return self.pipeline.stats

    def fresh_stats(self) -> PipelineStats:
        return PipelineStats()

    def close(self) -> None:
        if self._executor is not None:
            executor, self._executor = self._executor, None
            # close() folds residual worker stats into the pipeline's
            # current counters; nothing is lost.
            executor.close()


class Mm2Engine(Engine):
    """The minimizer seed-chain-align baseline behind the protocol.

    Paired-end input; the O(genome) minimizer index is built when the
    engine is first constructed (i.e. on the first ``engine="mm2"``
    request against a warm facade, never sooner).
    """

    name = "mm2"
    input_kind = INPUT_PAIRED

    def __init__(self, facade) -> None:
        from ..mapper.mm2 import MapperConfig, MapperStats, Mm2LikeMapper

        options = facade.config.mm2_options()
        self.config = facade.config
        self._stats_type = MapperStats
        self.mapper = Mm2LikeMapper(
            facade.reference,
            config=MapperConfig(
                max_insert=options.max_insert,
                min_score_fraction=options.min_score_fraction,
                mate_rescue=options.mate_rescue))

    def begin_run(self) -> None:
        self.mapper.stats = self._stats_type()

    def map_stream(self, items: Iterable) -> Iterator[MappingResult]:
        chunk_size = max(self.config.batch_size, 1)
        for chunk in _chunk_paired(items, chunk_size):
            for (read1, read2, name), outcome in zip(
                    chunk, self.mapper.map_pairs(chunk)):
                record1, record2, proper = outcome
                if proper:
                    stage = "proper_pair"
                elif record1.mapped or record2.mapped:
                    stage = "mapped"
                else:
                    stage = "unmapped"
                yield MappingResult(name=name,
                                    records=(record1, record2),
                                    engine=self.name, stage=stage,
                                    joint_score=record1.score
                                    + record2.score)

    def run_stats(self):
        return self.mapper.stats

    def fresh_stats(self):
        return self._stats_type()


class LongReadEngine(Engine):
    """Single-read long-read mapping behind the protocol.

    Shares the facade's SeedMap — one warm memory-mapped index serves
    both GenPair and long-read traffic — which is why the facade's
    ``seed_length``/``delta`` flow into :class:`LongReadConfig` and the
    pseudo-pair ``chunk_length`` must fit at least one seed.
    """

    name = "longread"
    input_kind = INPUT_SINGLE

    def __init__(self, facade) -> None:
        config: MappingConfig = facade.config
        options = config.longread_options()
        if options.chunk_length < config.seed_length:
            raise MappingConfigError(
                f"longread.chunk_length ({options.chunk_length}) must "
                f"be >= seed_length ({config.seed_length}): each "
                "pseudo-pair chunk must hold at least one seed")
        self.config = config
        self.mapper = LongReadMapper(
            facade.reference, seedmap=facade.seedmap,
            config=LongReadConfig(
                chunk_length=options.chunk_length,
                seed_length=config.seed_length,
                seeds_per_chunk=config.seeds_per_read,
                delta=config.delta,
                vote_bin=options.vote_bin,
                max_votes_tried=options.max_votes_tried,
                min_votes=options.min_votes,
                dp_bandwidth=options.dp_bandwidth))

    def begin_run(self) -> None:
        self.mapper.stats = LongReadStats()

    def map_stream(self, items: Iterable) -> Iterator[MappingResult]:
        chunk_size = max(self.config.batch_size, 1)
        for chunk in _chunk_single(items, chunk_size):
            for (codes, name), record in zip(chunk,
                                             self.mapper.map_reads(chunk)):
                yield MappingResult(
                    name=name, records=(record,), engine=self.name,
                    stage="mapped" if record.mapped else "unmapped",
                    joint_score=record.score)

    def run_stats(self) -> LongReadStats:
        return self.mapper.stats

    def fresh_stats(self) -> LongReadStats:
        return LongReadStats()
