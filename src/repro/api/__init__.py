"""The public mapping API: one facade over the whole toolchain.

This package is the supported programmatic surface of the
reproduction.  Everything the ``repro`` CLI can do — open or build an
index, stream paired reads through the batched engine and the
persistent worker pool, write SAM — is reachable through four objects:

* :class:`MappingConfig` — every knob of a run in one validated,
  round-trippable object, with the canonical
  :class:`IndexFingerprint` shared with :mod:`repro.index`;
* :class:`Mapper` — the context-manager facade: construct once from an
  index file or a reference, then call :meth:`~Mapper.map`,
  :meth:`~Mapper.map_file`, and :meth:`~Mapper.to_sam` as often as
  needed; the memory-mapped index and the forked worker pool are owned
  by the facade and **reused across calls**;
* :class:`MapServer` / :func:`serve` — the ``repro serve`` daemon: a
  long-running process holding the warm ``Mapper`` and answering
  newline-delimited JSON mapping requests over a UNIX socket;
* :class:`Client` — the thin connection object behind ``repro client``.

Hello world::

    from repro.api import Mapper

    with Mapper.from_index("demo.rpix") as mapper:
        results = mapper.map_file("demo_1.fq", "demo_2.fq")
        mapper.to_sam(results, "demo.sam")
        print(mapper.last_stats.pairs_total, "pairs mapped")

Stage selection is declarative through the registries
(:data:`~repro.api.registry.FILTER_CHAINS`,
:data:`~repro.api.registry.ALIGNERS`)::

    config = MappingConfig(filter_chain="shd", aligner="light")
    with Mapper.from_index("demo.rpix", config=config) as mapper:
        ...

Attributes resolve lazily (PEP 562) so low-level modules —
``repro.index`` imports the canonical fingerprint from
:mod:`repro.api.config` — can depend on this package without cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_EXPORTS = {
    "MappingConfig": "config",
    "MappingConfigError": "config",
    "IndexFingerprint": "config",
    "UNSET": "config",
    "ALIGNERS": "registry",
    "FILTER_CHAINS": "registry",
    "RegistryError": "registry",
    "StageRegistry": "registry",
    "Mapper": "mapper",
    "MapServer": "server",
    "ServerError": "server",
    "ServerStats": "server",
    "serve": "server",
    "Client": "client",
    "ClientError": "client",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .client import Client, ClientError
    from .config import (UNSET, IndexFingerprint, MappingConfig,
                         MappingConfigError)
    from .mapper import Mapper
    from .registry import (ALIGNERS, FILTER_CHAINS, RegistryError,
                           StageRegistry)
    from .server import MapServer, ServerError, ServerStats, serve


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
