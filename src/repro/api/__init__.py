"""The public mapping API: one engine-polymorphic facade.

This package is the supported programmatic surface of the
reproduction.  Every workload — the paired-end GenPair pipeline, the
mm2-like baseline, single-read long-read mapping — and every output
format (SAM, PAF, JSONL) flows through the same objects:

* :class:`MappingConfig` — every knob of a run in one validated,
  round-trippable object: the canonical :class:`IndexFingerprint`
  shared with :mod:`repro.index`, the ``engine``/``output_format``
  workload selection, and engine-specific sub-configs
  (:class:`Mm2Options`, :class:`LongReadOptions`) that are rejected
  loudly when they don't match the selected engine;
* :class:`Mapper` — the context-manager facade: construct once from an
  index file or a reference, then call :meth:`~Mapper.map`,
  :meth:`~Mapper.map_file`, and :meth:`~Mapper.write` as often as
  needed, with any registered engine per call; the memory-mapped
  index, lazily-built engine instances, and the forked worker pool are
  owned by the facade and **reused across calls**.  All engines emit
  the common :class:`MappingResult` record, and
  :meth:`~Mapper.map_and_call` chains variant calling as a post-stage;
* :class:`MapServer` / :func:`serve` — the ``repro serve`` daemon: a
  long-running process holding the warm ``Mapper`` and answering
  newline-delimited JSON mapping requests (with per-request
  ``engine``/``format`` selection) over a UNIX socket;
* :class:`Client` — the thin connection object behind ``repro client``.

Hello world::

    from repro.api import Mapper

    with Mapper.from_index("demo.rpix") as mapper:
        results = mapper.map_file("demo_1.fq", "demo_2.fq")
        mapper.to_sam(results, "demo.sam")
        print(mapper.last_stats.pairs_total, "pairs mapped")

Workload and stage selection are declarative through the registries
(:data:`~repro.api.registry.ENGINES`,
:data:`~repro.api.registry.OUTPUT_FORMATS`,
:data:`~repro.api.registry.FILTER_CHAINS`,
:data:`~repro.api.registry.ALIGNERS`)::

    config = MappingConfig(engine="longread", output_format="paf")
    with Mapper.from_index("demo.rpix", config=config) as mapper:
        mapper.write(mapper.map_file("long.fq"), "long.paf")

Attributes resolve lazily (PEP 562) so low-level modules —
``repro.index`` imports the canonical fingerprint from
:mod:`repro.api.config` — can depend on this package without cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_EXPORTS = {
    "MappingConfig": "config",
    "MappingConfigError": "config",
    "IndexFingerprint": "config",
    "Mm2Options": "config",
    "LongReadOptions": "config",
    "UNSET": "config",
    "ALIGNERS": "registry",
    "ENGINES": "registry",
    "FILTER_CHAINS": "registry",
    "OUTPUT_FORMATS": "registry",
    "OutputFormat": "registry",
    "output_format": "registry",
    "RegistryError": "registry",
    "StageRegistry": "registry",
    "Engine": "engines",
    "GenPairEngine": "engines",
    "LongReadEngine": "engines",
    "Mm2Engine": "engines",
    "MappingResult": "engines",
    "Mapper": "mapper",
    "MapServer": "server",
    "ServeSettings": "server",
    "ServerError": "server",
    "ServerStats": "server",
    "serve": "server",
    "Client": "client",
    "ClientError": "client",
    "RequestTimeoutError": "client",
    "ServerBusyError": "client",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from ..genome.results import MappingResult
    from .client import (Client, ClientError, RequestTimeoutError,
                         ServerBusyError)
    from .config import (UNSET, IndexFingerprint, LongReadOptions,
                         MappingConfig, MappingConfigError, Mm2Options)
    from .engines import (Engine, GenPairEngine, LongReadEngine,
                          Mm2Engine)
    from .mapper import Mapper
    from .registry import (ALIGNERS, ENGINES, FILTER_CHAINS,
                           OUTPUT_FORMATS, OutputFormat, RegistryError,
                           StageRegistry, output_format)
    from .server import (MapServer, ServeSettings, ServerError,
                         ServerStats, serve)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
