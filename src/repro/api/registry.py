"""Named registries: declarative engine, stage, and output choice.

Instead of callers composing mapper and stage classes by hand, a
:class:`~repro.api.MappingConfig` names what it wants —
``engine="mm2"``, ``filter_chain="shd"``, ``aligner="light"``,
``output_format="paf"`` — and :class:`~repro.api.Mapper` resolves the
names here when it builds the workload.  Four registries exist:

* :data:`ENGINES` — the mapping engines behind the polymorphic facade:
  ``genpair`` (the paper's paired-end pipeline, the default), ``mm2``
  (the minimizer seed-chain-align baseline with paired-end support),
  and ``longread`` (pseudo-pair Location Voting over single long
  reads).  Factories take the :class:`~repro.api.Mapper` facade and
  return an :class:`~repro.api.engines.Engine` adapter sharing the
  facade's reference/SeedMap;
* :data:`OUTPUT_FORMATS` — the output writers every engine's results
  flow through: ``sam`` (default), ``paf``, and ``jsonl``.  Each
  :class:`OutputFormat` bundles header/record line renderers with a
  file writer built on the *same* renderers, so daemon wire output is
  byte-identical to file output by construction;

* :data:`FILTER_CHAINS` — pre-alignment candidate screens
  (:class:`~repro.filters.stages.FilterChain` instances): ``none``
  (default — the pipeline's historical behaviour), ``shd``,
  ``gatekeeper``, ``exact``, ``adjacency`` (SHD with the intra-read
  amendment disabled, the FastHASH-adjacent raw-mask variant), and
  ``combined`` (exact fast-accept semantics are lossy, so the combined
  chain strings GateKeeper *then* SHD: the cheap raw-mask reject first,
  the amended tighter filter second);
* :data:`ALIGNERS` — candidate aligners behind the light-align
  contract: ``light`` (default), ``filtered-light`` (the §8
  SHD-then-light combination of
  :class:`~repro.filters.FilteredLightAligner`), and ``banded-dp``
  (banded Gotoh DP at every candidate — the always-correct reference
  stage).

Every factory takes the resolved :class:`~repro.api.MappingConfig` and
returns a fresh stage object, so per-run knobs (``max_edits``,
``score_threshold``, ``fallback_bandwidth``) flow into the stage.
Unknown names raise :class:`RegistryError` naming the available
entries; third-party stages register with the ``register`` decorator::

    @FILTER_CHAINS.register("my-screen")
    def _build(config):
        return FilterChain((MyScreen(),), name="my-screen")
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..align.scoring import DEFAULT_SCHEME
from ..align.stages import BandedDpAligner
from ..filters.combined import FilteredLightAligner
from ..filters.stages import (ExactScreen, FilterChain, GateKeeperScreen,
                              ShdScreen)


class RegistryError(LookupError):
    """An unknown stage name was requested; names the available ones."""


class StageRegistry:
    """A named factory table for one kind of pipeline stage."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable] = {}

    def register(self, name: str, factory: Callable = None):
        """Register ``factory`` under ``name`` (usable as a decorator)."""
        if factory is None:
            def decorator(fn: Callable) -> Callable:
                self.register(name, fn)
                return fn
            return decorator
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty "
                             f"string, got {name!r}")
        if name in self._factories:
            raise ValueError(f"{self.kind} {name!r} is already "
                             "registered")
        self._factories[name] = factory
        return factory

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._factories))

    def require(self, name: str) -> Callable:
        """The factory for ``name``, or a :class:`RegistryError` that
        names every available stage."""
        try:
            return self._factories[name]
        except KeyError:
            available = ", ".join(self.names()) or "(none registered)"
            raise RegistryError(
                f"unknown {self.kind} {name!r}; available: "
                f"{available}") from None

    def create(self, name: str, config):
        """Build a fresh stage instance for ``name`` from ``config``."""
        return self.require(name)(config)


#: Pre-alignment candidate screens, selected by ``filter_chain``.
FILTER_CHAINS = StageRegistry("filter chain")

#: Candidate aligners, selected by ``aligner``.
ALIGNERS = StageRegistry("aligner")


@FILTER_CHAINS.register("none")
def _chain_none(config) -> FilterChain:
    return FilterChain((), name="none")


@FILTER_CHAINS.register("shd")
def _chain_shd(config) -> FilterChain:
    return FilterChain((ShdScreen(max_edits=config.max_edits),),
                       name="shd")


@FILTER_CHAINS.register("gatekeeper")
def _chain_gatekeeper(config) -> FilterChain:
    return FilterChain((GateKeeperScreen(max_edits=config.max_edits),),
                       name="gatekeeper")


@FILTER_CHAINS.register("adjacency")
def _chain_adjacency(config) -> FilterChain:
    # The FastHASH-flavoured raw-mask variant: SHD without the
    # amendment step is exactly the adjacent-shift Hamming criterion.
    return FilterChain((ShdScreen(max_edits=config.max_edits,
                                  amend_min_run=1),),
                       name="adjacency")


@FILTER_CHAINS.register("exact")
def _chain_exact(config) -> FilterChain:
    return FilterChain((ExactScreen(),), name="exact")


@FILTER_CHAINS.register("combined")
def _chain_combined(config) -> FilterChain:
    return FilterChain((GateKeeperScreen(max_edits=config.max_edits),
                        ShdScreen(max_edits=config.max_edits)),
                       name="combined")


@ALIGNERS.register("light")
def _aligner_light(config):
    from ..core.light_align import LightAligner

    return LightAligner(scheme=DEFAULT_SCHEME,
                        max_edits=config.max_edits,
                        threshold=config.score_threshold)


@ALIGNERS.register("filtered-light")
def _aligner_filtered_light(config) -> FilteredLightAligner:
    return FilteredLightAligner(scheme=DEFAULT_SCHEME,
                                max_edits=config.max_edits,
                                threshold=config.score_threshold)


@ALIGNERS.register("banded-dp")
def _aligner_banded_dp(config) -> BandedDpAligner:
    return BandedDpAligner(scheme=DEFAULT_SCHEME,
                           threshold=config.score_threshold,
                           bandwidth=config.fallback_bandwidth)


# -- engines ----------------------------------------------------------------

#: Mapping engines, selected by ``engine``.  Factories take the
#: :class:`~repro.api.Mapper` facade (reference, SeedMap, config) and
#: return an engine adapter; the engine classes import lazily so the
#: registry stays cheap to import.
ENGINES = StageRegistry("engine")


@ENGINES.register("genpair")
def _engine_genpair(facade):
    from .engines import GenPairEngine

    return GenPairEngine(facade)


@ENGINES.register("mm2")
def _engine_mm2(facade):
    from .engines import Mm2Engine

    return Mm2Engine(facade)


@ENGINES.register("longread")
def _engine_longread(facade):
    from .engines import LongReadEngine

    return LongReadEngine(facade)


# -- output formats ---------------------------------------------------------


class OutputFormat:
    """One named output format: line renderers plus a file writer.

    ``header_lines``/``record_lines`` are the wire form the daemon
    streams; :meth:`open` returns an incremental file writer built on
    the *same* renderers, so a file reassembled from wire lines is
    byte-identical to one written directly.
    """

    def __init__(self, name: str, suffix: str, header, records,
                 writer) -> None:
        self.name = name
        self.suffix = suffix
        self._header = header
        self._records = records
        self._writer = writer

    def header_lines(self, reference=None):
        """Lines written once, before any record (may be empty)."""
        return list(self._header(reference))

    def record_lines(self, results, reference=None):
        """Lazy record lines for a result stream."""
        return self._records(results, reference)

    def lines(self, results, reference=None, header: bool = True):
        """Wire form: optional header lines, then record lines."""
        if header:
            yield from self.header_lines(reference)
        yield from self.record_lines(results, reference)

    def open(self, path, reference=None):
        """An incremental writer (context manager with ``count``/
        ``write_result``/``drain``) for ``path``."""
        return self._writer(path, reference)


#: Output formats, selected by ``output_format``.
OUTPUT_FORMATS = StageRegistry("output format")


def output_format(name: str) -> OutputFormat:
    """The :class:`OutputFormat` registered under ``name`` (unknown
    names raise :class:`RegistryError` listing the available ones)."""
    return OUTPUT_FORMATS.create(name, None)


@OUTPUT_FORMATS.register("sam")
def _format_sam(config=None) -> OutputFormat:
    from ..genome.sam import SamWriter, sam_header_lines, sam_record_lines

    return OutputFormat(
        "sam", ".sam",
        header=sam_header_lines,
        records=lambda results, reference: sam_record_lines(results),
        writer=lambda path, reference: SamWriter(path,
                                                 reference=reference))


@OUTPUT_FORMATS.register("paf")
def _format_paf(config=None) -> OutputFormat:
    from ..genome.paf import PafWriter, paf_header_lines, paf_record_lines

    return OutputFormat(
        "paf", ".paf",
        header=paf_header_lines,
        records=paf_record_lines,
        writer=lambda path, reference: PafWriter(path,
                                                 reference=reference))


@OUTPUT_FORMATS.register("jsonl")
def _format_jsonl(config=None) -> OutputFormat:
    from ..genome.jsonl import (JsonlWriter, jsonl_header_lines,
                                jsonl_record_lines)

    return OutputFormat(
        "jsonl", ".jsonl",
        header=jsonl_header_lines,
        records=jsonl_record_lines,
        writer=lambda path, reference: JsonlWriter(path,
                                                   reference=reference))
