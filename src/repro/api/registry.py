"""Named stage registries: declarative filter-chain and aligner choice.

Instead of callers composing filter and aligner classes by hand, a
:class:`~repro.api.MappingConfig` names its stages —
``filter_chain="shd"``, ``aligner="light"`` — and
:class:`~repro.api.Mapper` resolves the names here when it builds the
pipeline.  Two registries exist:

* :data:`FILTER_CHAINS` — pre-alignment candidate screens
  (:class:`~repro.filters.stages.FilterChain` instances): ``none``
  (default — the pipeline's historical behaviour), ``shd``,
  ``gatekeeper``, ``exact``, ``adjacency`` (SHD with the intra-read
  amendment disabled, the FastHASH-adjacent raw-mask variant), and
  ``combined`` (exact fast-accept semantics are lossy, so the combined
  chain strings GateKeeper *then* SHD: the cheap raw-mask reject first,
  the amended tighter filter second);
* :data:`ALIGNERS` — candidate aligners behind the light-align
  contract: ``light`` (default), ``filtered-light`` (the §8
  SHD-then-light combination of
  :class:`~repro.filters.FilteredLightAligner`), and ``banded-dp``
  (banded Gotoh DP at every candidate — the always-correct reference
  stage).

Every factory takes the resolved :class:`~repro.api.MappingConfig` and
returns a fresh stage object, so per-run knobs (``max_edits``,
``score_threshold``, ``fallback_bandwidth``) flow into the stage.
Unknown names raise :class:`RegistryError` naming the available
entries; third-party stages register with the ``register`` decorator::

    @FILTER_CHAINS.register("my-screen")
    def _build(config):
        return FilterChain((MyScreen(),), name="my-screen")
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..align.scoring import DEFAULT_SCHEME
from ..align.stages import BandedDpAligner
from ..filters.combined import FilteredLightAligner
from ..filters.stages import (ExactScreen, FilterChain, GateKeeperScreen,
                              ShdScreen)


class RegistryError(LookupError):
    """An unknown stage name was requested; names the available ones."""


class StageRegistry:
    """A named factory table for one kind of pipeline stage."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable] = {}

    def register(self, name: str, factory: Callable = None):
        """Register ``factory`` under ``name`` (usable as a decorator)."""
        if factory is None:
            def decorator(fn: Callable) -> Callable:
                self.register(name, fn)
                return fn
            return decorator
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty "
                             f"string, got {name!r}")
        if name in self._factories:
            raise ValueError(f"{self.kind} {name!r} is already "
                             "registered")
        self._factories[name] = factory
        return factory

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._factories))

    def require(self, name: str) -> Callable:
        """The factory for ``name``, or a :class:`RegistryError` that
        names every available stage."""
        try:
            return self._factories[name]
        except KeyError:
            available = ", ".join(self.names()) or "(none registered)"
            raise RegistryError(
                f"unknown {self.kind} {name!r}; available: "
                f"{available}") from None

    def create(self, name: str, config):
        """Build a fresh stage instance for ``name`` from ``config``."""
        return self.require(name)(config)


#: Pre-alignment candidate screens, selected by ``filter_chain``.
FILTER_CHAINS = StageRegistry("filter chain")

#: Candidate aligners, selected by ``aligner``.
ALIGNERS = StageRegistry("aligner")


@FILTER_CHAINS.register("none")
def _chain_none(config) -> FilterChain:
    return FilterChain((), name="none")


@FILTER_CHAINS.register("shd")
def _chain_shd(config) -> FilterChain:
    return FilterChain((ShdScreen(max_edits=config.max_edits),),
                       name="shd")


@FILTER_CHAINS.register("gatekeeper")
def _chain_gatekeeper(config) -> FilterChain:
    return FilterChain((GateKeeperScreen(max_edits=config.max_edits),),
                       name="gatekeeper")


@FILTER_CHAINS.register("adjacency")
def _chain_adjacency(config) -> FilterChain:
    # The FastHASH-flavoured raw-mask variant: SHD without the
    # amendment step is exactly the adjacent-shift Hamming criterion.
    return FilterChain((ShdScreen(max_edits=config.max_edits,
                                  amend_min_run=1),),
                       name="adjacency")


@FILTER_CHAINS.register("exact")
def _chain_exact(config) -> FilterChain:
    return FilterChain((ExactScreen(),), name="exact")


@FILTER_CHAINS.register("combined")
def _chain_combined(config) -> FilterChain:
    return FilterChain((GateKeeperScreen(max_edits=config.max_edits),
                        ShdScreen(max_edits=config.max_edits)),
                       name="combined")


@ALIGNERS.register("light")
def _aligner_light(config):
    from ..core.light_align import LightAligner

    return LightAligner(scheme=DEFAULT_SCHEME,
                        max_edits=config.max_edits,
                        threshold=config.score_threshold)


@ALIGNERS.register("filtered-light")
def _aligner_filtered_light(config) -> FilteredLightAligner:
    return FilteredLightAligner(scheme=DEFAULT_SCHEME,
                                max_edits=config.max_edits,
                                threshold=config.score_threshold)


@ALIGNERS.register("banded-dp")
def _aligner_banded_dp(config) -> BandedDpAligner:
    return BandedDpAligner(scheme=DEFAULT_SCHEME,
                           threshold=config.score_threshold,
                           bandwidth=config.fallback_bandwidth)
