"""The :class:`Mapper` facade: one object that owns a whole mapping setup.

:class:`Mapper` is **engine-polymorphic**: one facade (one reference,
one memory-mapped SeedMap index, one config) serves every registered
workload — the paired-end GenPair pipeline, the mm2-like baseline, and
single-read long-read mapping — through the same ``map`` /
``map_stream`` / ``map_file`` surface, emitting the common
:class:`~repro.genome.MappingResult` record whatever the engine.
Engine instances are built **lazily, once per engine name**, and reused
across calls (and daemon requests); the GenPair engine additionally
owns the persistent :class:`~repro.core.pipeline.StreamExecutor` worker
pool, created on first use and reused until :meth:`close`.

Output is equally pluggable: :meth:`write` and :meth:`lines` resolve
``sam`` / ``paf`` / ``jsonl`` through
:data:`~repro.api.registry.OUTPUT_FORMATS`, with the daemon's wire
lines byte-identical to file output by construction.
:meth:`map_and_call` chains :func:`repro.variants.call_variants` as an
optional post-stage: one pass over the result stream writes the
alignment file *and* piles up mapped records for variant calling.

Statistics have an explicit lifecycle: :attr:`last_stats` is the
just-completed run (typed by the engine that ran), :attr:`stats`
accumulates GenPair runs (the historical counters), and
:meth:`engine_stats` reports cumulative per-engine counters;
:meth:`reset_stats` rewinds the accumulators.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from ..core.pipeline import PipelineStats, _fork_context
from ..genome.io_fasta import iter_pairs, iter_reads, read_fasta
from ..genome.reference import ReferenceGenome
from ..genome.results import MappingResult, result_records
from ..obs import get_registry
from ..util.sync import maybe_sanitize_lock
from .config import MappingConfig, MappingConfigError
from .engines import INPUT_SINGLE, Engine, merge_stats, stats_dict
from .registry import ENGINES, output_format

PathLike = Union[str, Path]


class Mapper:
    """Context-manager facade over index, engines, and worker pool.

    Construct through :meth:`from_index` or :meth:`from_reference`;
    the plain constructor accepts pre-built objects (the power-user
    seam the classmethods and the daemon share).

    One mapping run at a time: :meth:`map`, :meth:`map_file`, and the
    :meth:`map_stream` generator may be called repeatedly — engines and
    the worker pool persist between calls — but not concurrently (a
    second call while a stream is being consumed raises).  Every
    mapping call takes an optional ``engine=`` override; without it the
    config's ``engine`` runs.
    """

    def __init__(self, reference: ReferenceGenome, seedmap,
                 config: Optional[MappingConfig] = None,
                 index=None) -> None:
        self.config = (config if config is not None
                       else MappingConfig()).validate()
        self.config.resolve_stages()
        self.reference = reference
        self.seedmap = seedmap
        self.index = index
        self._engines: Dict[str, Engine] = {}
        # The serving tier resolves engines from connection threads
        # while the scheduler maps; the cache get-or-create below must
        # not double-build (a SanitizedLock under REPRO_SANITIZE=1).
        self._engines_lock = maybe_sanitize_lock("api.engines")
        self._totals: Dict[str, Any] = {}
        self.last_stats = PipelineStats()
        self.last_engine: Optional[str] = None
        self._running = False
        self._closed = False

    # -- construction --------------------------------------------------

    @classmethod
    def from_index(cls, path: PathLike,
                   config: Optional[MappingConfig] = None,
                   **overrides: Any) -> "Mapper":
        """Open a persistent index and build a mapper over it.

        With ``config=None`` the mapper adopts the index's fingerprint
        (``overrides`` tune the non-fingerprint knobs, e.g.
        ``workers=4`` or ``engine="longread"``).  An explicit
        ``config`` must agree with the index fingerprint exactly — a
        mismatch raises :class:`MappingConfigError` naming every
        conflicting field, so a stale index is rejected loudly instead
        of silently serving a differently-configured pipeline.
        """
        from ..index import open_index

        if config is not None and overrides:
            raise MappingConfigError(
                "pass either a full MappingConfig or keyword "
                "overrides, not both")
        verify = overrides.get("verify_index",
                               config.verify_index if config is not None
                               else True)
        index = open_index(path, verify=verify)
        if config is None:
            config = MappingConfig.from_fingerprint(index.fingerprint,
                                                    **overrides)
        else:
            problems = index.fingerprint.conflicts(
                seed_length=config.seed_length,
                filter_threshold=config.filter_threshold,
                step=config.step)
            if problems:
                raise MappingConfigError(
                    f"config does not match index {str(path)!r}: index "
                    f"was built with {'; '.join(problems)}; rebuild "
                    "the index or adopt its fingerprint with "
                    "MappingConfig.from_fingerprint")
        return cls(index.reference, index.seedmap, config=config,
                   index=index)

    @classmethod
    def from_reference(cls, reference: Union[PathLike, ReferenceGenome],
                       config: Optional[MappingConfig] = None,
                       **overrides: Any) -> "Mapper":
        """Build a mapper from a FASTA path or an in-memory reference.

        The SeedMap is built in-process with the config's fingerprint
        parameters — the pay-per-run path; prefer
        :meth:`from_index` + ``repro index build`` for repeated runs.
        """
        from ..core.seedmap import SeedMap

        if config is not None and overrides:
            raise MappingConfigError(
                "pass either a full MappingConfig or keyword "
                "overrides, not both")
        if config is None:
            config = MappingConfig(**overrides)
        if not isinstance(reference, ReferenceGenome):
            reference = read_fasta(reference)
        seedmap = SeedMap.build(reference,
                                seed_length=config.seed_length,
                                filter_threshold=config.filter_threshold,
                                step=config.step)
        return cls(reference, seedmap, config=config)

    # -- engines -------------------------------------------------------

    def engine(self, name: Optional[str] = None) -> Engine:
        """The engine instance for ``name`` (default: the config's).

        Built lazily on first request and reused afterwards — the
        warm-facade property per-request engine selection in the
        daemon relies on.  Unknown names raise
        :class:`~repro.api.registry.RegistryError` listing the
        registered engines.
        """
        self._assert_open()
        name = name if name is not None else self.config.engine
        with self._engines_lock:
            engine = self._engines.get(name)
            if engine is None:
                engine = ENGINES.create(name, self)
                self._engines[name] = engine
                self._totals.setdefault(name, engine.fresh_stats())
        return engine

    @property
    def pipeline(self):
        """The GenPair engine's pipeline (built on first access)."""
        return self.engine("genpair").pipeline

    @property
    def _executor(self):
        """The GenPair worker pool, if it exists yet (tests and the
        lifecycle assertions peek here; ``None`` until the first
        pooled run or :meth:`warm_up`)."""
        engine = self._engines.get("genpair")
        return engine._executor if engine is not None else None

    # -- mapping -------------------------------------------------------

    def map(self, items: Iterable,
            engine: Optional[str] = None) -> List[MappingResult]:
        """Map items eagerly; returns results in input order.

        Paired engines accept ``(read1, read2[, name])`` tuples of code
        arrays or objects with ``read1``/``read2``/``name``; the
        single-read ``longread`` engine accepts ``(codes, name)``
        tuples, objects with ``codes``/``name``, or bare code arrays.
        """
        return list(self.map_stream(items, engine=engine))

    def map_stream(self, items: Iterable,
                   engine: Optional[str] = None
                   ) -> Iterator[MappingResult]:
        """Map a lazy item stream, yielding results as chunks finish.

        The selected engine (and, for ``genpair`` with
        ``config.workers > 1``, its worker pool) is created on the
        first call and **reused** by every later one; per-run
        statistics land in :attr:`last_stats` when the returned
        generator is exhausted or closed.
        """
        self._assert_open()
        if self._running:
            raise RuntimeError("Mapper is already mapping; one run at "
                               "a time")
        generator = self._run(items, self.engine(engine))
        # Prime to the handshake yield: the run slot is claimed *now*,
        # at call time — a second stream created before this one is
        # consumed raises above instead of silently interleaving — and
        # a started generator's finally is guaranteed to release it
        # even if the stream is abandoned unconsumed.
        next(generator)
        return generator

    def map_file(self, reads1: PathLike,
                 reads2: Optional[PathLike] = None,
                 engine: Optional[str] = None) -> Iterator[MappingResult]:
        """Map FASTQ file(s), streaming in O(batch) memory.

        Paired engines take two paired FASTQ paths; the single-read
        ``longread`` engine takes exactly one.  The wrong arity for the
        selected engine raises :class:`MappingConfigError` naming the
        engine and what it expects.
        """
        selected = self.engine(engine)
        chunk = self.config.batch_size if self.config.batch_size > 0 \
            else None
        if selected.input_kind == INPUT_SINGLE:
            if reads2 is not None:
                raise MappingConfigError(
                    f"engine {selected.name!r} maps single-read FASTQ; "
                    "pass one reads file, not two")
            stream = iter_reads(reads1, chunk_size=chunk)
        else:
            if reads2 is None:
                raise MappingConfigError(
                    f"engine {selected.name!r} maps paired FASTQ; pass "
                    "both reads1 and reads2")
            stream = iter_pairs(reads1, reads2, chunk_size=chunk)
        return self.map_stream(stream, engine=selected.name)

    def _run(self, items: Iterable,
             engine: Engine) -> Iterator[MappingResult]:
        self._running = True
        started = time.perf_counter()
        try:
            # Fresh per-run counters; the previous run's totals live
            # on in the per-engine accumulators / last_stats.
            engine.begin_run()
            yield None  # handshake consumed by map_stream's prime
            yield from engine.map_stream(items)
        finally:
            engine.finish_run()
            stats = engine.run_stats()
            self.last_stats = stats
            self.last_engine = engine.name
            merge_stats(self._totals[engine.name], stats)
            self._record_run(engine.name, stats,
                             time.perf_counter() - started)
            self._running = False

    @staticmethod
    def _record_run(name: str, stats, elapsed: float) -> None:
        """Fold one completed run into the metrics registry.

        Once per *run* (never per pair), so it costs nothing on the
        hot path; the counter folds are bit-identical between
        ``workers=1`` and ``workers=N`` because the stats they mirror
        already are.
        """
        obs = get_registry()
        if not obs.enabled:
            return
        obs.counter(f"engine.{name}.runs").inc()
        obs.histogram(f"engine.{name}.run_s").observe(elapsed)
        for field, value in stats_dict(stats).items():
            obs.counter(f"engine.{name}.{field}").inc(value)

    # -- output --------------------------------------------------------

    def _resolve_format(self, name: Optional[str], results):
        """The named output format — closing a ``results`` generator
        first if the name doesn't resolve, so a bad format never
        leaves a primed run claiming the one-run-at-a-time slot."""
        try:
            return output_format(name if name is not None
                                 else self.config.output_format)
        except Exception:
            close = getattr(results, "close", None)
            if close is not None:
                close()
            raise

    def write(self, results: Iterable, path: PathLike,
              format: Optional[str] = None) -> int:
        """Drain mapping results into ``path`` in the named output
        format (default: the config's ``output_format``); returns the
        record-line count.  Closes a generator stream even on error,
        so the worker pool never leaks in-flight chunks."""
        fmt = self._resolve_format(format, results)
        obs = get_registry()
        started = time.perf_counter() if obs.enabled else 0.0
        with fmt.open(path, self.reference) as writer:
            try:
                writer.drain(results)
            finally:
                close = getattr(results, "close", None)
                if close is not None:
                    close()
            count = writer.count
        if obs.enabled:
            obs.histogram(f"output.{fmt.name}.write_s").observe(
                time.perf_counter() - started)
            obs.counter(f"output.{fmt.name}.records").inc(count)
        return count

    def lines(self, results: Iterable, format: Optional[str] = None,
              header: bool = True) -> Iterator[str]:
        """Render results as text lines (the daemon's wire form).

        With ``header=True`` the format's header lines come first, so
        concatenating the lines with newlines reproduces :meth:`write`
        output byte for byte — for every registered format.
        """
        fmt = self._resolve_format(format, results)
        stream = fmt.lines(results, self.reference, header=header)
        if not get_registry().enabled:
            return stream
        return self._counted_lines(stream, fmt.name)

    @staticmethod
    def _counted_lines(stream: Iterator[str],
                       format_name: str) -> Iterator[str]:
        """Yield ``stream`` unchanged while counting wire lines; the
        counter lands even when the consumer abandons the stream early
        (the underlying generator is closed in the same finally)."""
        emitted = 0
        try:
            for line in stream:
                emitted += 1
                yield line
        finally:
            close = getattr(stream, "close", None)
            if close is not None:
                close()
            get_registry().counter(
                f"output.{format_name}.wire_lines").inc(emitted)

    def to_sam(self, results: Iterable, path: PathLike) -> int:
        """:meth:`write` pinned to the SAM format (historical name)."""
        return self.write(results, path, format="sam")

    def sam_lines(self, results: Iterable,
                  header: bool = True) -> Iterator[str]:
        """:meth:`lines` pinned to the SAM format (historical name)."""
        return self.lines(results, format="sam", header=header)

    # -- variant-calling post-stage ------------------------------------

    def map_and_call(self, results: Iterable, out: PathLike,
                     vcf_out: PathLike,
                     format: Optional[str] = None) -> tuple:
        """Write results to ``out`` AND call variants to ``vcf_out``.

        One pass over the (possibly lazy) result stream: each result is
        written in the named output format while its mapped records are
        piled up; when the stream ends,
        :func:`repro.variants.call_variants` runs over the pileup and
        the calls are written as VCF.  Returns ``(record_lines,
        variant_calls)``.
        """
        from ..variants import Pileup, call_variants, write_vcf

        fmt = self._resolve_format(format, results)
        pileup = Pileup(self.reference)
        with fmt.open(out, self.reference) as writer:
            try:
                for result in results:
                    writer.write_result(result)
                    for record in result_records(result):
                        if record.mapped and record.read_codes is not None:
                            pileup.add_record(record)
            finally:
                close = getattr(results, "close", None)
                if close is not None:
                    close()
            records = writer.count
        calls = call_variants(pileup)
        count = write_vcf(vcf_out, calls, reference=self.reference)
        return records, count

    # -- statistics lifecycle ------------------------------------------

    @property
    def stats(self) -> PipelineStats:
        """GenPair counters accumulated over all completed ``genpair``
        runs since construction or the last :meth:`reset_stats` (the
        in-progress run, if any, is not included until it finishes).
        Per-engine accumulators live in :meth:`engine_stats`."""
        return self._totals.setdefault("genpair", PipelineStats())

    def engine_stats(self) -> Dict[str, Dict[str, int]]:
        """Cumulative counters per engine that has run, as plain
        dictionaries keyed by engine name."""
        return {name: stats_dict(total)
                for name, total in sorted(self._totals.items())}

    def reset_stats(self) -> None:
        """Zero the cumulative counters (and :attr:`last_stats`)."""
        self._totals = {name: engine.fresh_stats()
                        for name, engine in self._engines.items()}
        self.last_stats = PipelineStats()
        self.last_engine = None

    # -- lifecycle -----------------------------------------------------

    @property
    def uses_pool(self) -> bool:
        """Will ``genpair`` mapping runs go through a persistent worker
        pool?  (The other engines always map in-process.)"""
        return (self.config.workers > 1 and self.config.batch_size > 0
                and _fork_context() is not None)

    def warm_up(self, engine: Optional[str] = None) -> "Mapper":
        """Build the named engine (default: the config's) before the
        first run — including the GenPair worker pool, if configured.

        Mapping calls do this lazily; the daemon calls it at startup
        instead, so the pool fork happens while the process is still
        single-threaded and the first request hits a warm engine.
        """
        self._assert_open()
        self.engine(engine).warm_up()
        if self.uses_pool:
            # Whatever the default engine, a configured pool belongs to
            # genpair: fork it now, pre-threads, so a later per-request
            # engine switch doesn't fork inside a threaded daemon.
            self.engine("genpair").warm_up()
        return self

    def _assert_open(self) -> None:
        if self._closed:
            raise RuntimeError("Mapper is closed")

    def close(self) -> None:
        """Shut every engine (and the worker pool) down and mark the
        mapper closed.

        Idempotent.  The memory-mapped index views stay valid for
        already-returned results; no further mapping calls are
        accepted.
        """
        if self._closed:
            return
        self._closed = True
        for engine in self._engines.values():
            engine.close()

    def __enter__(self) -> "Mapper":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
