"""The :class:`Mapper` facade: one object that owns a whole mapping setup.

Before this facade, serving reads meant hand-wiring four modules:
``open_index`` for the memory-mapped tables, ``GenPairPipeline`` with a
``GenPairConfig``, ``StreamExecutor`` for the worker pool, and
``SamWriter`` for output — with the worker pool forked anew on *every*
``map_stream(workers=N)`` call.  :class:`Mapper` packages that wiring
behind a context manager:

* :meth:`Mapper.from_index` / :meth:`Mapper.from_reference` construct
  it (mmap-cheap and build-once respectively), validating the config
  against the index's canonical fingerprint;
* the :class:`~repro.core.pipeline.StreamExecutor` worker pool is
  created **lazily on the first mapping call and reused across calls**
  until :meth:`close` — the warm-pool property the ``repro serve``
  daemon is built on;
* stage selection (``filter_chain``, ``aligner``) resolves through the
  registries, so a config fully determines the pipeline;
* statistics have an explicit lifecycle: :attr:`last_stats` is the
  just-completed run, :attr:`stats` accumulates across runs, and
  :meth:`reset_stats` rewinds the accumulator — no more counters
  silently bleeding between successive runs on one pipeline.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Iterator, List, Optional, Union

from ..core.pipeline import GenPairPipeline, PairResult, PipelineStats, \
    StreamExecutor, _fork_context
from ..genome.io_fasta import iter_pairs, read_fasta
from ..genome.reference import ReferenceGenome
from ..genome.sam import SamWriter, sam_header_lines, sam_record_lines
from .config import MappingConfig, MappingConfigError
from .registry import ALIGNERS, FILTER_CHAINS

PathLike = Union[str, Path]


def _lazy_full_fallback(reference: ReferenceGenome):
    """Full-DP fallback that defers the O(genome) minimizer-index build
    until the first pair actually needs it, so a mapper whose pairs all
    stay on the GenPair path keeps mmap-cheap startup."""
    from ..mapper import Mm2LikeMapper, make_full_fallback

    state: dict = {}

    def fallback(read1, read2, name):
        if "fn" not in state:
            state["fn"] = make_full_fallback(Mm2LikeMapper(reference))
        return state["fn"](read1, read2, name)

    return fallback


class Mapper:
    """Context-manager facade over index, pipeline, and worker pool.

    Construct through :meth:`from_index` or :meth:`from_reference`;
    the plain constructor accepts pre-built objects (the power-user
    seam the classmethods and the daemon share).

    One mapping run at a time: :meth:`map`, :meth:`map_file`, and the
    :meth:`map_stream` generator may be called repeatedly — the worker
    pool persists between calls — but not concurrently (a second call
    while a stream is being consumed raises).
    """

    def __init__(self, reference: ReferenceGenome, seedmap,
                 config: Optional[MappingConfig] = None,
                 index=None) -> None:
        self.config = (config if config is not None
                       else MappingConfig()).validate()
        self.config.resolve_stages()
        self.reference = reference
        self.index = index
        chain = FILTER_CHAINS.create(self.config.filter_chain,
                                     self.config)
        # An empty chain means "screen nothing": hand the pipeline None
        # so the candidate hot path stays exactly the historical code.
        screen = chain if len(chain) else None
        aligner = ALIGNERS.create(self.config.aligner, self.config)
        full_fallback = None
        if self.config.full_fallback:
            if self._wants_pool():
                # Forked workers inherit a pre-fork build copy-on-write;
                # building lazily would make every worker rebuild it.
                from ..mapper import Mm2LikeMapper, make_full_fallback
                full_fallback = make_full_fallback(
                    Mm2LikeMapper(reference))
            else:
                full_fallback = _lazy_full_fallback(reference)
        self.pipeline = GenPairPipeline(
            reference, seedmap=seedmap, config=self.config.genpair(),
            full_fallback=full_fallback, aligner=aligner,
            candidate_screen=screen)
        self._executor: Optional[StreamExecutor] = None
        self._total = PipelineStats()
        self.last_stats = PipelineStats()
        self._running = False
        self._closed = False

    # -- construction --------------------------------------------------

    @classmethod
    def from_index(cls, path: PathLike,
                   config: Optional[MappingConfig] = None,
                   **overrides: Any) -> "Mapper":
        """Open a persistent index and build a mapper over it.

        With ``config=None`` the mapper adopts the index's fingerprint
        (``overrides`` tune the non-fingerprint knobs, e.g.
        ``workers=4``).  An explicit ``config`` must agree with the
        index fingerprint exactly — a mismatch raises
        :class:`MappingConfigError` naming every conflicting field, so
        a stale index is rejected loudly instead of silently serving a
        differently-configured pipeline.
        """
        from ..index import open_index

        if config is not None and overrides:
            raise MappingConfigError(
                "pass either a full MappingConfig or keyword "
                "overrides, not both")
        verify = overrides.get("verify_index",
                               config.verify_index if config is not None
                               else True)
        index = open_index(path, verify=verify)
        if config is None:
            config = MappingConfig.from_fingerprint(index.fingerprint,
                                                    **overrides)
        else:
            problems = index.fingerprint.conflicts(
                seed_length=config.seed_length,
                filter_threshold=config.filter_threshold,
                step=config.step)
            if problems:
                raise MappingConfigError(
                    f"config does not match index {str(path)!r}: index "
                    f"was built with {'; '.join(problems)}; rebuild "
                    "the index or adopt its fingerprint with "
                    "MappingConfig.from_fingerprint")
        return cls(index.reference, index.seedmap, config=config,
                   index=index)

    @classmethod
    def from_reference(cls, reference: Union[PathLike, ReferenceGenome],
                       config: Optional[MappingConfig] = None,
                       **overrides: Any) -> "Mapper":
        """Build a mapper from a FASTA path or an in-memory reference.

        The SeedMap is built in-process with the config's fingerprint
        parameters — the pay-per-run path; prefer
        :meth:`from_index` + ``repro index build`` for repeated runs.
        """
        from ..core.seedmap import SeedMap

        if config is not None and overrides:
            raise MappingConfigError(
                "pass either a full MappingConfig or keyword "
                "overrides, not both")
        if config is None:
            config = MappingConfig(**overrides)
        if not isinstance(reference, ReferenceGenome):
            reference = read_fasta(reference)
        seedmap = SeedMap.build(reference,
                                seed_length=config.seed_length,
                                filter_threshold=config.filter_threshold,
                                step=config.step)
        return cls(reference, seedmap, config=config)

    # -- mapping -------------------------------------------------------

    def map(self, pairs: Iterable) -> List[PairResult]:
        """Map pairs eagerly; returns results in input order.

        Accepts what the pipeline accepts: ``(read1, read2[, name])``
        tuples of code arrays, or objects with ``read1``/``read2``/
        ``name`` attributes (e.g. ``SimulatedPair``).
        """
        return list(self.map_stream(pairs))

    def map_stream(self, pairs: Iterable) -> Iterator[PairResult]:
        """Map a lazy pair stream, yielding results as chunks finish.

        The worker pool (``config.workers > 1``) is created on the
        first call and **reused** by every later one; per-run
        statistics land in :attr:`last_stats` when the returned
        generator is exhausted or closed.
        """
        self._assert_open()
        if self._running:
            raise RuntimeError("Mapper is already mapping; one run at "
                               "a time")
        generator = self._run(pairs)
        # Prime to the handshake yield: the run slot is claimed *now*,
        # at call time — a second stream created before this one is
        # consumed raises above instead of silently interleaving — and
        # a started generator's finally is guaranteed to release it
        # even if the stream is abandoned unconsumed.
        next(generator)
        return generator

    def map_file(self, reads1: PathLike,
                 reads2: PathLike) -> Iterator[PairResult]:
        """Map two paired FASTQ files, streaming in O(batch) memory."""
        chunk = self.config.batch_size if self.config.batch_size > 0 \
            else None
        return self.map_stream(iter_pairs(reads1, reads2,
                                          chunk_size=chunk))

    def _run(self, pairs: Iterable) -> Iterator[PairResult]:
        config = self.config
        pipeline = self.pipeline
        self._running = True
        try:
            # Fresh per-run counters; the previous run's totals live
            # on in self._total / self.last_stats.
            pipeline.stats = PipelineStats()
            yield None  # handshake consumed by map_stream's prime
            executor = self._ensure_executor()
            if executor is not None:
                yield from executor.map(pairs)
            elif config.batch_size > 0:
                yield from pipeline.map_stream(
                    pairs, chunk_size=config.batch_size,
                    workers=config.workers if config.workers > 1
                    else None)
            else:
                # The scalar reference engine, with the same global
                # synthetic-name numbering as the chunked paths.
                for chunk in pipeline._chunk_stream(pairs, 1):
                    for read1, read2, name in chunk:
                        yield pipeline.map_pair(read1, read2, name)
        finally:
            if self._executor is not None:
                self._executor.fold_stats()
            self.last_stats = pipeline.stats
            self._total.merge(pipeline.stats)
            self._running = False

    # -- output --------------------------------------------------------

    def to_sam(self, results: Iterable[PairResult],
               path: PathLike) -> int:
        """Drain mapping results into a SAM file; returns the record
        count.  Closes a generator stream even on error, so the worker
        pool never leaks in-flight chunks."""
        with SamWriter(path, reference=self.reference) as writer:
            try:
                writer.drain(results)
            finally:
                close = getattr(results, "close", None)
                if close is not None:
                    close()
            return writer.count

    def sam_lines(self, results: Iterable[PairResult],
                  header: bool = True) -> Iterator[str]:
        """Render results as SAM text lines (the daemon's wire form).

        With ``header=True`` the same ``@HD``/``@SQ`` lines
        :class:`~repro.genome.SamWriter` writes come first, so
        concatenating the lines with newlines reproduces
        :meth:`to_sam` output byte for byte.
        """
        if header:
            yield from sam_header_lines(self.reference)
        yield from sam_record_lines(results)

    # -- statistics lifecycle ------------------------------------------

    @property
    def stats(self) -> PipelineStats:
        """Counters accumulated over all completed runs since
        construction or the last :meth:`reset_stats` (the in-progress
        run, if any, is not included until it finishes)."""
        return self._total

    def reset_stats(self) -> None:
        """Zero the cumulative counters (and :attr:`last_stats`)."""
        self._total = PipelineStats()
        self.last_stats = PipelineStats()

    # -- lifecycle -----------------------------------------------------

    @property
    def uses_pool(self) -> bool:
        """Will mapping runs go through a persistent worker pool?"""
        return self._wants_pool()

    def warm_up(self) -> "Mapper":
        """Create the worker pool (if configured) before the first run.

        Mapping calls do this lazily; the daemon calls it at startup
        instead, so the fork happens while the process is still
        single-threaded and the first request hits a warm pool.
        """
        self._assert_open()
        self._ensure_executor()
        return self

    def _wants_pool(self) -> bool:
        return (self.config.workers > 1 and self.config.batch_size > 0
                and _fork_context() is not None)

    def _ensure_executor(self) -> Optional[StreamExecutor]:
        if self._executor is None and self._wants_pool():
            self._executor = StreamExecutor(
                self.pipeline, workers=self.config.workers,
                chunk_size=self.config.batch_size,
                inflight=self.config.inflight)
        return self._executor

    def _assert_open(self) -> None:
        if self._closed:
            raise RuntimeError("Mapper is closed")

    def close(self) -> None:
        """Shut the worker pool down and mark the mapper closed.

        Idempotent.  The memory-mapped index views stay valid for
        already-returned results; no further mapping calls are
        accepted.
        """
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            executor, self._executor = self._executor, None
            # close() folds any residual worker stats into the
            # pipeline's current counters; nothing is lost, and the
            # accumulator keeps them via the last completed run.
            executor.close()

    def __enter__(self) -> "Mapper":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
