"""Thin client for the ``repro serve`` daemon (the ``repro client`` CLI).

One connection, newline-delimited JSON requests, blocking responses —
deliberately boring: all the intelligence lives server-side in the
warm :class:`~repro.api.Mapper`.  The address is a UNIX socket path or
a TCP endpoint (``HOST:PORT`` / ``tcp://HOST:PORT``), matching what
the daemon listens on.  Usable as a context manager::

    from repro.api import Client

    with Client("demo.rpix.sock") as client:      # or "host:7533"
        client.ping()
        report = client.map_file("demo_1.fq", "demo_2.fq", "demo.sam")
        print(report["pairs"], "pairs in", report["elapsed_s"], "s")

Two failure shapes of the concurrent daemon surface as typed errors:

* ``busy`` (queue full / client limit) raises :class:`ServerBusyError`
  — but only after the built-in retry policy is exhausted: the client
  retries with exponential backoff (``busy_retries`` times, starting
  at ``busy_backoff_s`` and honouring the daemon's ``retry_after_s``
  hint), reconnecting between attempts, so transient contention is
  absorbed without hand-rolled loops.  ``busy_retries=0`` disables.
* ``timeout`` (the per-request deadline expired; see the ``timeout=``
  kwarg on the mapping calls) raises :class:`RequestTimeoutError`
  carrying ``stage`` — whether the deadline hit while the request was
  still queued or already executing.  Never retried automatically:
  retrying with the same deadline would likely time out again.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from ..serve.address import Address, parse_address
from ..serve.protocol import E_BUSY, E_TIMEOUT

PathLike = Union[str, Path]

#: Backoff growth is capped here; with the default 50 ms start and 4
#: retries the worst case waits 50+100+200+400 ms ≈ 0.75 s total.
MAX_BACKOFF_S = 2.0


class ClientError(RuntimeError):
    """The daemon was unreachable, or answered a request with an error."""


class ServerBusyError(ClientError):
    """The daemon refused the request under load (``busy``)."""

    def __init__(self, message: str,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class RequestTimeoutError(ClientError):
    """The request's deadline expired daemon-side (``timeout``)."""

    def __init__(self, message: str,
                 stage: Optional[str] = None) -> None:
        super().__init__(message)
        self.stage = stage


class Client:
    """A connection to a running ``repro serve`` daemon.

    ``socket_path`` names the endpoint — a UNIX socket path (the
    historical form) or a TCP address (``HOST:PORT``).  ``timeout``
    bounds every socket operation; the default ``None`` waits
    indefinitely, because a daemon-side ``map_file`` of a large input
    legitimately takes as long as the mapping does — pass a bound when
    probing liveness (``Client(path, timeout=5)``).  Per-request
    deadlines (the mapping calls' ``timeout=`` kwarg) are enforced
    daemon-side and answered with a structured ``timeout`` error
    instead of a dead socket.
    """

    def __init__(self, socket_path: PathLike,
                 timeout: Optional[float] = None, *,
                 busy_retries: int = 4,
                 busy_backoff_s: float = 0.05) -> None:
        self.socket_path = str(socket_path)
        self.address: Address = parse_address(socket_path)
        self._timeout = timeout
        if busy_retries < 0:
            raise ValueError("busy_retries must be >= 0")
        if busy_backoff_s <= 0:
            raise ValueError("busy_backoff_s must be > 0")
        self._busy_retries = busy_retries
        self._busy_backoff_s = busy_backoff_s
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._connect()

    def _connect(self) -> None:
        try:
            self._sock = self.address.connect(self._timeout)
        except OSError as exc:
            raise ClientError(
                f"cannot reach daemon at {self.address.display!r}: "
                f"{exc} (is `repro serve` running?)") from None
        self._reader = self._sock.makefile("rb")

    def _reconnect(self) -> None:
        """Fresh connection for a busy retry — the daemon closes
        connections refused at the client limit, and requests never
        pipeline, so reconnecting is always safe."""
        self.close()
        self._connect()

    def request(self, payload: Dict[str, Any],
                retries: Optional[int] = None) -> Dict[str, Any]:
        """Send one request object; return the daemon's response.

        ``busy`` answers are retried with exponential backoff
        (``retries`` overrides the client-wide ``busy_retries``).
        Raises :class:`ClientError` on transport failure or when the
        daemon answers ``ok: false`` — :class:`ServerBusyError` /
        :class:`RequestTimeoutError` for the structured codes.
        """
        budget = self._busy_retries if retries is None else retries
        delay = self._busy_backoff_s
        attempt = 0
        while True:
            try:
                return self._request_once(payload)
            except ServerBusyError as refusal:
                if attempt >= budget:
                    raise
                wait = refusal.retry_after_s
                time.sleep(max(wait, delay) if wait is not None
                           else delay)
                delay = min(delay * 2, MAX_BACKOFF_S)
                attempt += 1
                self._reconnect()

    def _request_once(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        try:
            self._sock.sendall(json.dumps(payload).encode() + b"\n")
            line = self._reader.readline()
        except OSError as exc:
            raise ClientError(f"daemon connection failed: {exc}") \
                from None
        if not line:
            raise ClientError("daemon closed the connection "
                              "mid-request")
        try:
            response = json.loads(line)
        except ValueError:
            raise ClientError("daemon sent an unparseable response "
                              "line") from None
        if not response.get("ok"):
            raise self._error_for(response)
        return response

    @staticmethod
    def _error_for(response: Dict[str, Any]) -> ClientError:
        message = response.get("error", "daemon reported failure")
        code = response.get("error_code")
        if code == E_BUSY:
            return ServerBusyError(
                message, retry_after_s=response.get("retry_after_s"))
        if code == E_TIMEOUT:
            return RequestTimeoutError(message,
                                       stage=response.get("stage"))
        return ClientError(message)

    # -- operations ----------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to shut down gracefully."""
        return self.request({"op": "shutdown"})

    @staticmethod
    def _workload(payload: Dict[str, Any], engine: Optional[str],
                  format: Optional[str], trace: bool = False,
                  timeout: Optional[float] = None) -> Dict[str, Any]:
        """Attach per-request engine/format/trace/deadline selection."""
        if engine is not None:
            payload["engine"] = engine
        if format is not None:
            payload["format"] = format
        if trace:
            payload["trace"] = True
        if timeout is not None:
            payload["timeout_s"] = timeout
        return payload

    def map_pairs(self, pairs: Iterable, header: bool = False,
                  engine: Optional[str] = None,
                  format: Optional[str] = None,
                  trace: bool = False,
                  timeout: Optional[float] = None) -> Dict[str, Any]:
        """Map inline pairs; reads may be ACGT strings or code arrays.

        ``engine``/``format`` select a registered engine and output
        format for this request (default: the daemon's configured
        ones).  ``timeout`` is the per-request deadline in seconds,
        enforced daemon-side (``0`` disables the daemon's default
        deadline for this request).  Returns the raw response:
        ``lines`` (record lines in the requested format, prefixed with
        the header lines when ``header=True``; ``sam`` stays as an
        alias for the SAM format), per-request ``stats``,
        ``elapsed_s``, and ``coalesced`` (how many concurrent requests
        shared this request's engine run).  With ``trace=True`` the
        response also carries ``trace`` — the per-stage span breakdown
        of this request — without changing the wire lines.
        """
        wire: List[List[str]] = []
        for number, entry in enumerate(pairs):
            try:
                if isinstance(entry, dict):
                    # The name is optional, matching the daemon (which
                    # numbers unnamed pairs by request position).
                    item = [_as_text(entry["read1"]),
                            _as_text(entry["read2"])]
                    if entry.get("name") is not None:
                        item.append(str(entry["name"]))
                else:
                    entry = list(entry)
                    item = [_as_text(entry[0]), _as_text(entry[1])]
                    if len(entry) > 2:
                        item.append(str(entry[2]))
            except (IndexError, KeyError):
                raise ClientError(
                    f"pair {number}: expected (read1, read2[, name]) "
                    "or {'read1': ..., 'read2': ..., 'name'?: ...}") \
                    from None
            wire.append(item)
        return self.request(self._workload(
            {"op": "map", "pairs": wire, "header": header},
            engine, format, trace, timeout))

    def map_reads(self, reads: Iterable, header: bool = False,
                  engine: str = "longread",
                  format: Optional[str] = None,
                  trace: bool = False,
                  timeout: Optional[float] = None) -> Dict[str, Any]:
        """Map inline single reads through a single-read engine.

        ``reads`` entries are ACGT strings / code arrays, ``(read,
        name)`` tuples, or ``{'read': ..., 'name'?: ...}`` dicts.
        """
        wire: List[List[str]] = []
        for number, entry in enumerate(reads):
            try:
                if isinstance(entry, dict):
                    item = [_as_text(entry["read"])]
                    if entry.get("name") is not None:
                        item.append(str(entry["name"]))
                elif isinstance(entry, (tuple, list)):
                    item = [_as_text(entry[0])]
                    if len(entry) > 1:
                        item.append(str(entry[1]))
                else:
                    item = [_as_text(entry)]
            except (IndexError, KeyError):
                raise ClientError(
                    f"read {number}: expected read, (read[, name]), "
                    "or {'read': ..., 'name'?: ...}") from None
            wire.append(item)
        return self.request(self._workload(
            {"op": "map", "reads": wire, "header": header},
            engine, format, trace, timeout))

    def map_file(self, reads1: PathLike,
                 reads2: Optional[PathLike] = None,
                 out: Optional[PathLike] = None,
                 engine: Optional[str] = None,
                 format: Optional[str] = None,
                 trace: bool = False,
                 timeout: Optional[float] = None) -> Dict[str, Any]:
        """Map FASTQ paths daemon-side, writing ``out`` daemon-side.

        Paired engines take ``reads1`` and ``reads2``; single-read
        engines take ``reads1`` alone (leave ``reads2`` as ``None``).
        Paths are resolved by the daemon process, so relative paths
        are made absolute here first.
        """
        if out is None:
            raise ClientError("map_file needs an output path")
        payload = {
            "op": "map_file",
            "reads1": str(Path(reads1).absolute()),
            "out": str(Path(out).absolute())}
        if reads2 is not None:
            payload["reads2"] = str(Path(reads2).absolute())
        return self.request(self._workload(payload, engine, format,
                                           trace, timeout))

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._reader.close()
        finally:
            self._sock.close()
            self._sock = None
            self._reader = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _as_text(read) -> str:
    """ACGT text for a read given as text or as a code array."""
    if isinstance(read, str):
        return read
    from ..genome.sequence import decode

    return decode(read)
