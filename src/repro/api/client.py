"""Thin client for the ``repro serve`` daemon (the ``repro client`` CLI).

One connection, newline-delimited JSON requests, blocking responses —
deliberately boring: all the intelligence lives server-side in the
warm :class:`~repro.api.Mapper`.  Usable as a context manager::

    from repro.api import Client

    with Client("demo.rpix.sock") as client:
        client.ping()
        report = client.map_file("demo_1.fq", "demo_2.fq", "demo.sam")
        print(report["pairs"], "pairs in", report["elapsed_s"], "s")
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

PathLike = Union[str, Path]


class ClientError(RuntimeError):
    """The daemon was unreachable, or answered a request with an error."""


class Client:
    """A connection to a running ``repro serve`` daemon.

    ``timeout`` bounds every socket operation; the default ``None``
    waits indefinitely, because a daemon-side ``map_file`` of a large
    input legitimately takes as long as the mapping does — pass a
    bound when probing liveness (``Client(path, timeout=5)``).
    """

    def __init__(self, socket_path: PathLike,
                 timeout: Optional[float] = None) -> None:
        self.socket_path = str(socket_path)
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover
            raise ClientError("repro client requires UNIX-domain "
                              "sockets, which this platform lacks")
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        try:
            self._sock.connect(self.socket_path)
        except OSError as exc:
            self._sock.close()
            raise ClientError(
                f"cannot reach daemon at {self.socket_path!r}: {exc} "
                "(is `repro serve` running?)") from None
        self._reader = self._sock.makefile("rb")

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object; return the daemon's response.

        Raises :class:`ClientError` on transport failure or when the
        daemon answers ``ok: false``.
        """
        try:
            self._sock.sendall(json.dumps(payload).encode() + b"\n")
            line = self._reader.readline()
        except OSError as exc:
            raise ClientError(f"daemon connection failed: {exc}") \
                from None
        if not line:
            raise ClientError("daemon closed the connection "
                              "mid-request")
        try:
            response = json.loads(line)
        except ValueError:
            raise ClientError("daemon sent an unparseable response "
                              "line") from None
        if not response.get("ok"):
            raise ClientError(response.get("error",
                                           "daemon reported failure"))
        return response

    # -- operations ----------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to shut down gracefully."""
        return self.request({"op": "shutdown"})

    @staticmethod
    def _workload(payload: Dict[str, Any], engine: Optional[str],
                  format: Optional[str],
                  trace: bool = False) -> Dict[str, Any]:
        """Attach per-request engine/format/trace selection when given."""
        if engine is not None:
            payload["engine"] = engine
        if format is not None:
            payload["format"] = format
        if trace:
            payload["trace"] = True
        return payload

    def map_pairs(self, pairs: Iterable, header: bool = False,
                  engine: Optional[str] = None,
                  format: Optional[str] = None,
                  trace: bool = False) -> Dict[str, Any]:
        """Map inline pairs; reads may be ACGT strings or code arrays.

        ``engine``/``format`` select a registered engine and output
        format for this request (default: the daemon's configured
        ones).  Returns the raw response: ``lines`` (record lines in
        the requested format, prefixed with the header lines when
        ``header=True``; ``sam`` stays as an alias for the SAM
        format), per-request ``stats``, and ``elapsed_s``.  With
        ``trace=True`` the response also carries ``trace`` — the
        per-stage span breakdown of this request — without changing
        the wire lines.
        """
        wire: List[List[str]] = []
        for number, entry in enumerate(pairs):
            try:
                if isinstance(entry, dict):
                    # The name is optional, matching the daemon (which
                    # numbers unnamed pairs by request position).
                    item = [_as_text(entry["read1"]),
                            _as_text(entry["read2"])]
                    if entry.get("name") is not None:
                        item.append(str(entry["name"]))
                else:
                    entry = list(entry)
                    item = [_as_text(entry[0]), _as_text(entry[1])]
                    if len(entry) > 2:
                        item.append(str(entry[2]))
            except (IndexError, KeyError):
                raise ClientError(
                    f"pair {number}: expected (read1, read2[, name]) "
                    "or {'read1': ..., 'read2': ..., 'name'?: ...}") \
                    from None
            wire.append(item)
        return self.request(self._workload(
            {"op": "map", "pairs": wire, "header": header},
            engine, format, trace))

    def map_reads(self, reads: Iterable, header: bool = False,
                  engine: str = "longread",
                  format: Optional[str] = None,
                  trace: bool = False) -> Dict[str, Any]:
        """Map inline single reads through a single-read engine.

        ``reads`` entries are ACGT strings / code arrays, ``(read,
        name)`` tuples, or ``{'read': ..., 'name'?: ...}`` dicts.
        """
        wire: List[List[str]] = []
        for number, entry in enumerate(reads):
            try:
                if isinstance(entry, dict):
                    item = [_as_text(entry["read"])]
                    if entry.get("name") is not None:
                        item.append(str(entry["name"]))
                elif isinstance(entry, (tuple, list)):
                    item = [_as_text(entry[0])]
                    if len(entry) > 1:
                        item.append(str(entry[1]))
                else:
                    item = [_as_text(entry)]
            except (IndexError, KeyError):
                raise ClientError(
                    f"read {number}: expected read, (read[, name]), "
                    "or {'read': ..., 'name'?: ...}") from None
            wire.append(item)
        return self.request(self._workload(
            {"op": "map", "reads": wire, "header": header},
            engine, format, trace))

    def map_file(self, reads1: PathLike,
                 reads2: Optional[PathLike] = None,
                 out: Optional[PathLike] = None,
                 engine: Optional[str] = None,
                 format: Optional[str] = None,
                 trace: bool = False) -> Dict[str, Any]:
        """Map FASTQ paths daemon-side, writing ``out`` daemon-side.

        Paired engines take ``reads1`` and ``reads2``; single-read
        engines take ``reads1`` alone (leave ``reads2`` as ``None``).
        Paths are resolved by the daemon process, so relative paths
        are made absolute here first.
        """
        if out is None:
            raise ClientError("map_file needs an output path")
        payload = {
            "op": "map_file",
            "reads1": str(Path(reads1).absolute()),
            "out": str(Path(out).absolute())}
        if reads2 is not None:
            payload["reads2"] = str(Path(reads2).absolute())
        return self.request(self._workload(payload, engine, format,
                                           trace))

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _as_text(read) -> str:
    """ACGT text for a read given as text or as a code array."""
    if isinstance(read, str):
        return read
    from ..genome.sequence import decode

    return decode(read)
