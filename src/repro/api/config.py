"""Unified mapping configuration and the canonical index fingerprint.

:class:`MappingConfig` is the one knob object of the public API: it
consolidates the algorithmic parameters of
:class:`~repro.core.pipeline.GenPairConfig` with the index, batching,
worker, and stage-selection knobs that used to be scattered across
``GenPairPipeline``, ``StreamExecutor``, ``open_index``, and the CLI.
A config validates itself eagerly (:meth:`MappingConfig.validate`),
round-trips through plain dictionaries (:meth:`MappingConfig.to_dict` /
:meth:`MappingConfig.from_dict` — the daemon wire format), and derives
the engine-facing :class:`~repro.core.pipeline.GenPairConfig` on demand.

:class:`IndexFingerprint` is the **single canonical fingerprint** of an
index-compatible configuration: the ``(seed_length, filter_threshold,
step)`` triple a SeedMap was built with.  It is defined once, in
:mod:`repro.core.fingerprint` (below both this package and
``repro.index``, so either can import it without layering cycles), and
re-exported here: ``repro.index`` persists it in every index header and
validates it on open, and :meth:`MappingConfig.fingerprint` produces
the same object — so "does this config match that index?" is one
comparison with one definition, not two copies of the logic drifting
apart.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..align.scoring import HIGH_QUALITY_THRESHOLD
from ..core.fingerprint import UNSET, IndexFingerprint
from ..core.pairfilter import DEFAULT_DELTA
from ..core.seedmap import DEFAULT_FILTER_THRESHOLD

__all__ = ["UNSET", "IndexFingerprint", "MappingConfig",
           "MappingConfigError"]


class MappingConfigError(ValueError):
    """A :class:`MappingConfig` failed validation, or a config and an
    index disagree on the fingerprint."""


@dataclass(frozen=True)
class MappingConfig:
    """Every knob of a mapping run, in one validated object.

    Groups, mirroring the layers the values configure:

    * **fingerprint** — ``seed_length``, ``filter_threshold``, ``step``:
      what the SeedMap/index must have been built with
      (:meth:`fingerprint`);
    * **algorithm** — the remaining
      :class:`~repro.core.pipeline.GenPairConfig` parameters
      (``delta``, ``max_edits``, score/fallback knobs);
    * **stages** — ``filter_chain`` and ``aligner`` name registry
      entries (:mod:`repro.api.registry`), selecting the pre-alignment
      candidate screen and the candidate aligner declaratively;
    * **execution** — ``batch_size`` (0 selects the scalar reference
      engine), ``workers`` (>1 streams chunks through a persistent
      forked pool), ``inflight`` (in-flight chunk budget, default
      ``2 x workers``);
    * **environment** — ``full_fallback`` (map residual pairs with the
      baseline MM2 pipeline) and ``verify_index`` (crc-check arrays on
      index open).
    """

    # fingerprint
    seed_length: int = 50
    filter_threshold: Optional[int] = DEFAULT_FILTER_THRESHOLD
    step: int = 1
    # algorithm
    seeds_per_read: int = 3
    delta: int = DEFAULT_DELTA
    max_edits: int = 5
    score_threshold: int = HIGH_QUALITY_THRESHOLD
    fallback_bandwidth: int = 16
    fallback_pad: int = 24
    max_joint_candidates: int = 16
    min_dp_score_fraction: float = 0.5
    # stages
    filter_chain: str = "none"
    aligner: str = "light"
    # execution
    batch_size: int = 256
    workers: int = 1
    inflight: Optional[int] = None
    # environment
    full_fallback: bool = True
    verify_index: bool = True

    def __post_init__(self) -> None:
        self.validate()

    # -- validation ----------------------------------------------------

    def validate(self) -> "MappingConfig":
        """Raise :class:`MappingConfigError` listing every bad field."""
        problems: List[str] = []
        for name, minimum in (("seed_length", 1), ("step", 1),
                              ("seeds_per_read", 1), ("delta", 1),
                              ("max_edits", 0), ("fallback_bandwidth", 1),
                              ("fallback_pad", 0),
                              ("max_joint_candidates", 1),
                              ("batch_size", 0), ("workers", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < minimum:
                problems.append(f"{name} must be an integer >= {minimum}, "
                                f"got {value!r}")
        if self.filter_threshold is not None and (
                not isinstance(self.filter_threshold, int)
                or isinstance(self.filter_threshold, bool)
                or self.filter_threshold < 1):
            problems.append("filter_threshold must be None (unfiltered) "
                            f"or an integer >= 1, got "
                            f"{self.filter_threshold!r}")
        if self.inflight is not None and (
                not isinstance(self.inflight, int)
                or self.inflight < max(self.workers, 1)):
            problems.append("inflight must be None or an integer >= "
                            f"workers, got {self.inflight!r}")
        if not isinstance(self.min_dp_score_fraction, (int, float)) \
                or not 0.0 <= float(self.min_dp_score_fraction) <= 1.0:
            problems.append("min_dp_score_fraction must be within "
                            f"[0, 1], got {self.min_dp_score_fraction!r}")
        for name in ("filter_chain", "aligner"):
            if not isinstance(getattr(self, name), str):
                problems.append(f"{name} must be a registry name string, "
                                f"got {getattr(self, name)!r}")
        if problems:
            raise MappingConfigError(
                "invalid MappingConfig: " + "; ".join(problems))
        return self

    def resolve_stages(self) -> None:
        """Check ``filter_chain``/``aligner`` against the registries.

        Separate from :meth:`validate` so constructing a config stays
        import-light; :class:`~repro.api.Mapper` calls this before
        building a pipeline, and the error names the available stages.
        """
        from .registry import ALIGNERS, FILTER_CHAINS

        FILTER_CHAINS.require(self.filter_chain)
        ALIGNERS.require(self.aligner)

    # -- derivations ---------------------------------------------------

    def fingerprint(self) -> IndexFingerprint:
        """The canonical index fingerprint this config requires."""
        return IndexFingerprint(seed_length=self.seed_length,
                                filter_threshold=self.filter_threshold,
                                step=self.step)

    def genpair(self):
        """The engine-facing :class:`~repro.core.pipeline.GenPairConfig`."""
        from ..core.pipeline import GenPairConfig

        return GenPairConfig(
            seed_length=self.seed_length,
            seeds_per_read=self.seeds_per_read,
            delta=self.delta,
            filter_threshold=self.filter_threshold,
            max_edits=self.max_edits,
            score_threshold=self.score_threshold,
            fallback_bandwidth=self.fallback_bandwidth,
            fallback_pad=self.fallback_pad,
            max_joint_candidates=self.max_joint_candidates,
            min_dp_score_fraction=self.min_dp_score_fraction)

    def replace(self, **changes: Any) -> "MappingConfig":
        """A copy with ``changes`` applied (and re-validated)."""
        return dataclasses.replace(self, **changes)

    # -- wire format ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON-types dictionary; round-trips via :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MappingConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected by name so a version-skewed daemon
        request fails loudly instead of silently dropping knobs.
        """
        known = {spec.name for spec in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise MappingConfigError(
                f"unknown MappingConfig field(s): {', '.join(unknown)}")
        return cls(**payload)

    @classmethod
    def from_fingerprint(cls, fingerprint: IndexFingerprint,
                         **overrides: Any) -> "MappingConfig":
        """A config adopting an index's fingerprint (plus overrides).

        A fingerprint field passed in ``overrides`` is an
        *expectation*, not an override: the fingerprint is the ground
        truth, so a conflicting value raises
        :class:`MappingConfigError` (the ``map --index
        --filter-threshold`` gate) instead of silently reconfiguring.
        """
        problems = fingerprint.conflicts(
            seed_length=overrides.pop("seed_length", None),
            filter_threshold=overrides.pop("filter_threshold", UNSET),
            step=overrides.pop("step", None))
        if problems:
            raise MappingConfigError(
                "index fingerprint mismatch: built with "
                f"{'; '.join(problems)}")
        return cls(seed_length=fingerprint.seed_length,
                   filter_threshold=fingerprint.filter_threshold,
                   step=fingerprint.step, **overrides)
