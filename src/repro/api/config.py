"""Unified mapping configuration and the canonical index fingerprint.

:class:`MappingConfig` is the one knob object of the public API: it
consolidates the algorithmic parameters of
:class:`~repro.core.pipeline.GenPairConfig` with the index, batching,
worker, and stage-selection knobs that used to be scattered across
``GenPairPipeline``, ``StreamExecutor``, ``open_index``, and the CLI.
A config validates itself eagerly (:meth:`MappingConfig.validate`),
round-trips through plain dictionaries (:meth:`MappingConfig.to_dict` /
:meth:`MappingConfig.from_dict` — the daemon wire format), and derives
the engine-facing :class:`~repro.core.pipeline.GenPairConfig` on demand.

:class:`IndexFingerprint` is the **single canonical fingerprint** of an
index-compatible configuration: the ``(seed_length, filter_threshold,
step)`` triple a SeedMap was built with.  It is defined once, in
:mod:`repro.core.fingerprint` (below both this package and
``repro.index``, so either can import it without layering cycles), and
re-exported here: ``repro.index`` persists it in every index header and
validates it on open, and :meth:`MappingConfig.fingerprint` produces
the same object — so "does this config match that index?" is one
comparison with one definition, not two copies of the logic drifting
apart.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..align.scoring import HIGH_QUALITY_THRESHOLD
from ..core.fingerprint import UNSET, IndexFingerprint
from ..core.pairfilter import DEFAULT_DELTA
from ..core.seedmap import DEFAULT_FILTER_THRESHOLD

__all__ = ["UNSET", "IndexFingerprint", "LongReadOptions", "MappingConfig",
           "MappingConfigError", "Mm2Options"]


class MappingConfigError(ValueError):
    """A :class:`MappingConfig` failed validation, or a config and an
    index disagree on the fingerprint."""


def _reject_unknown(cls, payload: Dict[str, Any], label: str) -> None:
    """Raise naming every key of ``payload`` that ``cls`` lacks, so a
    version-skewed wire payload fails loudly instead of dropping knobs."""
    known = {spec.name for spec in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise MappingConfigError(
            f"unknown {label} field(s): {', '.join(unknown)}")


@dataclass(frozen=True)
class Mm2Options:
    """Engine-specific knobs of the ``mm2`` engine.

    Only meaningful with ``engine="mm2"`` — attaching these options to
    a config selecting another engine is rejected loudly (the knobs
    would otherwise silently do nothing).
    """

    #: Attempt mate rescue for pairs with no proper combination.
    mate_rescue: bool = True
    #: Proper-pair insert-size bound (and the mate-rescue window size).
    max_insert: int = 1000
    #: Alignments below this fraction of the perfect score are unmapped.
    min_score_fraction: float = 0.4

    def problems(self) -> List[str]:
        out: List[str] = []
        if not isinstance(self.mate_rescue, bool):
            out.append(f"mm2.mate_rescue must be a boolean, got "
                       f"{self.mate_rescue!r}")
        if not isinstance(self.max_insert, int) \
                or isinstance(self.max_insert, bool) or self.max_insert < 1:
            out.append(f"mm2.max_insert must be an integer >= 1, got "
                       f"{self.max_insert!r}")
        if not isinstance(self.min_score_fraction, (int, float)) \
                or not 0.0 <= float(self.min_score_fraction) <= 1.0:
            out.append("mm2.min_score_fraction must be within [0, 1], "
                       f"got {self.min_score_fraction!r}")
        return out

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Mm2Options":
        _reject_unknown(cls, payload, "Mm2Options")
        return cls(**payload)


@dataclass(frozen=True)
class LongReadOptions:
    """Engine-specific knobs of the ``longread`` engine.

    Only meaningful with ``engine="longread"`` — attaching these
    options to a config selecting another engine is rejected loudly.
    """

    #: Pseudo-pair chunk length (must be >= the config's seed_length).
    chunk_length: int = 150
    #: Bin width for location voting.
    vote_bin: int = 64
    #: How many top-voted locations get a DP alignment attempt.
    max_votes_tried: int = 3
    #: Vote threshold: bins with fewer votes never get a DP attempt.
    min_votes: int = 1
    #: Band width of the finishing DP alignment.
    dp_bandwidth: int = 96

    def problems(self) -> List[str]:
        out: List[str] = []
        for name, minimum in (("chunk_length", 1), ("vote_bin", 1),
                              ("max_votes_tried", 1), ("min_votes", 1),
                              ("dp_bandwidth", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < minimum:
                out.append(f"longread.{name} must be an integer >= "
                           f"{minimum}, got {value!r}")
        return out

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LongReadOptions":
        _reject_unknown(cls, payload, "LongReadOptions")
        return cls(**payload)


@dataclass(frozen=True)
class MappingConfig:
    """Every knob of a mapping run, in one validated object.

    Groups, mirroring the layers the values configure:

    * **fingerprint** — ``seed_length``, ``filter_threshold``, ``step``:
      what the SeedMap/index must have been built with
      (:meth:`fingerprint`);
    * **algorithm** — the remaining
      :class:`~repro.core.pipeline.GenPairConfig` parameters
      (``delta``, ``max_edits``, score/fallback knobs);
    * **workload** — ``engine`` names the mapping engine
      (``genpair`` | ``mm2`` | ``longread``), ``output_format`` the
      output writer (``sam`` | ``paf`` | ``jsonl``), and ``mm2`` /
      ``longread`` carry engine-specific sub-configs
      (:class:`Mm2Options` / :class:`LongReadOptions`) that are
      rejected loudly when they don't apply to the selected engine;
    * **stages** — ``filter_chain`` and ``aligner`` name registry
      entries (:mod:`repro.api.registry`), selecting the pre-alignment
      candidate screen and the candidate aligner declaratively;
    * **execution** — ``batch_size`` (0 selects the scalar reference
      engine), ``workers`` (>1 streams chunks through a persistent
      forked pool), ``inflight`` (in-flight chunk budget, default
      ``2 x workers``);
    * **environment** — ``full_fallback`` (map residual pairs with the
      baseline MM2 pipeline) and ``verify_index`` (crc-check arrays on
      index open).
    """

    # fingerprint
    seed_length: int = 50
    filter_threshold: Optional[int] = DEFAULT_FILTER_THRESHOLD
    step: int = 1
    # algorithm
    seeds_per_read: int = 3
    delta: int = DEFAULT_DELTA
    max_edits: int = 5
    score_threshold: int = HIGH_QUALITY_THRESHOLD
    fallback_bandwidth: int = 16
    fallback_pad: int = 24
    max_joint_candidates: int = 16
    min_dp_score_fraction: float = 0.5
    # workload
    engine: str = "genpair"
    output_format: str = "sam"
    mm2: Optional[Mm2Options] = None
    longread: Optional[LongReadOptions] = None
    # stages
    filter_chain: str = "none"
    aligner: str = "light"
    # execution
    batch_size: int = 256
    workers: int = 1
    inflight: Optional[int] = None
    # environment
    full_fallback: bool = True
    verify_index: bool = True

    def __post_init__(self) -> None:
        # Wire payloads carry sub-configs as plain dicts; adopt them as
        # the typed options objects before validating (unknown keys are
        # rejected by name inside from_dict).
        if isinstance(self.mm2, dict):
            object.__setattr__(self, "mm2", Mm2Options.from_dict(self.mm2))
        if isinstance(self.longread, dict):
            object.__setattr__(self, "longread",
                               LongReadOptions.from_dict(self.longread))
        self.validate()

    # -- validation ----------------------------------------------------

    def validate(self) -> "MappingConfig":
        """Raise :class:`MappingConfigError` listing every bad field."""
        problems: List[str] = []
        for name, minimum in (("seed_length", 1), ("step", 1),
                              ("seeds_per_read", 1), ("delta", 1),
                              ("max_edits", 0), ("fallback_bandwidth", 1),
                              ("fallback_pad", 0),
                              ("max_joint_candidates", 1),
                              ("batch_size", 0), ("workers", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < minimum:
                problems.append(f"{name} must be an integer >= {minimum}, "
                                f"got {value!r}")
        if self.filter_threshold is not None and (
                not isinstance(self.filter_threshold, int)
                or isinstance(self.filter_threshold, bool)
                or self.filter_threshold < 1):
            problems.append("filter_threshold must be None (unfiltered) "
                            f"or an integer >= 1, got "
                            f"{self.filter_threshold!r}")
        if self.inflight is not None and (
                not isinstance(self.inflight, int)
                or self.inflight < max(self.workers, 1)):
            problems.append("inflight must be None or an integer >= "
                            f"workers, got {self.inflight!r}")
        if not isinstance(self.min_dp_score_fraction, (int, float)) \
                or not 0.0 <= float(self.min_dp_score_fraction) <= 1.0:
            problems.append("min_dp_score_fraction must be within "
                            f"[0, 1], got {self.min_dp_score_fraction!r}")
        for name in ("engine", "output_format", "filter_chain",
                     "aligner"):
            if not isinstance(getattr(self, name), str):
                problems.append(f"{name} must be a registry name string, "
                                f"got {getattr(self, name)!r}")
        # Engine sub-configs must match the selected engine: silently
        # inert knobs are the failure mode this check exists to kill.
        for field_name, option_type in (("mm2", Mm2Options),
                                        ("longread", LongReadOptions)):
            value = getattr(self, field_name)
            if value is None:
                continue
            if not isinstance(value, option_type):
                problems.append(
                    f"{field_name} must be a {option_type.__name__} "
                    f"(or an equivalent dict), got {value!r}")
                continue
            problems.extend(value.problems())
            if self.engine != field_name:
                problems.append(
                    f"{field_name} options only apply to "
                    f"engine={field_name!r}, but engine is "
                    f"{self.engine!r}; drop them or select the "
                    f"matching engine")
        if problems:
            raise MappingConfigError(
                "invalid MappingConfig: " + "; ".join(problems))
        return self

    def resolve_stages(self) -> None:
        """Check every registry-named knob against its registry.

        ``filter_chain``/``aligner``/``engine``/``output_format`` are
        validated by name; separate from :meth:`validate` so
        constructing a config stays import-light.
        :class:`~repro.api.Mapper` calls this before building anything,
        and each error names the available entries.
        """
        from .registry import (ALIGNERS, ENGINES, FILTER_CHAINS,
                               OUTPUT_FORMATS)

        FILTER_CHAINS.require(self.filter_chain)
        ALIGNERS.require(self.aligner)
        ENGINES.require(self.engine)
        OUTPUT_FORMATS.require(self.output_format)

    # -- derivations ---------------------------------------------------

    def fingerprint(self) -> IndexFingerprint:
        """The canonical index fingerprint this config requires."""
        return IndexFingerprint(seed_length=self.seed_length,
                                filter_threshold=self.filter_threshold,
                                step=self.step)

    def genpair(self):
        """The engine-facing :class:`~repro.core.pipeline.GenPairConfig`."""
        from ..core.pipeline import GenPairConfig

        return GenPairConfig(
            seed_length=self.seed_length,
            seeds_per_read=self.seeds_per_read,
            delta=self.delta,
            filter_threshold=self.filter_threshold,
            max_edits=self.max_edits,
            score_threshold=self.score_threshold,
            fallback_bandwidth=self.fallback_bandwidth,
            fallback_pad=self.fallback_pad,
            max_joint_candidates=self.max_joint_candidates,
            min_dp_score_fraction=self.min_dp_score_fraction)

    def mm2_options(self) -> Mm2Options:
        """The effective ``mm2`` engine options (defaults when unset)."""
        return self.mm2 if self.mm2 is not None else Mm2Options()

    def longread_options(self) -> LongReadOptions:
        """The effective ``longread`` engine options (defaults when
        unset)."""
        return self.longread if self.longread is not None \
            else LongReadOptions()

    def replace(self, **changes: Any) -> "MappingConfig":
        """A copy with ``changes`` applied (and re-validated)."""
        return dataclasses.replace(self, **changes)

    # -- wire format ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON-types dictionary; round-trips via :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MappingConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected by name so a version-skewed daemon
        request fails loudly instead of silently dropping knobs.
        """
        known = {spec.name for spec in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise MappingConfigError(
                f"unknown MappingConfig field(s): {', '.join(unknown)}")
        return cls(**payload)

    @classmethod
    def from_fingerprint(cls, fingerprint: IndexFingerprint,
                         **overrides: Any) -> "MappingConfig":
        """A config adopting an index's fingerprint (plus overrides).

        A fingerprint field passed in ``overrides`` is an
        *expectation*, not an override: the fingerprint is the ground
        truth, so a conflicting value raises
        :class:`MappingConfigError` (the ``map --index
        --filter-threshold`` gate) instead of silently reconfiguring.
        """
        problems = fingerprint.conflicts(
            seed_length=overrides.pop("seed_length", None),
            filter_threshold=overrides.pop("filter_threshold", UNSET),
            step=overrides.pop("step", None))
        if problems:
            raise MappingConfigError(
                "index fingerprint mismatch: built with "
                f"{'; '.join(problems)}")
        return cls(seed_length=fingerprint.seed_length,
                   filter_threshold=fingerprint.filter_threshold,
                   step=fingerprint.step, **overrides)
