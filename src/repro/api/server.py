"""The ``repro serve`` daemon: a warm Mapper behind a UNIX socket.

``repro map`` pays index open, fallback construction, and worker-pool
fork on every invocation.  The daemon pays them **once**: a
:class:`MapServer` holds a live :class:`~repro.api.Mapper` (memory-
mapped index + persistent worker pool) and answers mapping requests
over a UNIX-domain stream socket for as long as it runs — the
wrap-the-persistent-aligner architecture production mappers use.

Wire protocol — newline-delimited JSON, one object per line, one
response line per request line; a connection may carry any number of
requests.  Operations:

``ping``
    Liveness probe.  Response carries ``pid``, ``uptime_s``, the index
    path, the config snapshot, and the registered engines/formats.
``map``
    Map workload items shipped inline.  Paired engines:
    ``{"op": "map", "pairs": [[read1, read2, name?], ...]}``;
    the single-read ``longread`` engine: ``{"op": "map", "engine":
    "longread", "reads": [[read, name?], ...]}`` — reads as ACGT
    strings either way.  Optional ``"engine"`` and ``"format"`` keys
    select any registered engine/output format **per request** against
    the one warm facade (engine instances are built lazily and
    reused).  Responds with ``{"lines": [...]}`` — record lines in the
    requested format (plus header lines first when ``"header": true``;
    ``"sam"`` is kept as an alias when the format is SAM) — and
    per-request ``stats``/``elapsed_s``.
``map_file``
    Map server-side FASTQ paths and write an output file server-side:
    ``{"op": "map_file", "reads1": ..., "reads2": ..., "out": ...}``
    (``reads2`` omitted for single-read engines), plus the same
    optional ``"engine"``/``"format"`` keys.  The heavy-duty path: no
    reads cross the socket, and the output is byte-identical to an
    offline ``repro map`` with the same config (asserted in the test
    suite and the CI smoke job).
``stats``
    Cumulative mapper counters (GenPair-compatible ``mapper`` plus
    per-engine ``engines``), server totals (requests served, pairs
    mapped, per-op counts, errors), the full process metrics registry
    snapshot (``metrics`` — per-stage latency histograms, per-worker
    executor timings, request latencies by op), and ``host`` metadata.

Mapping requests additionally accept ``"trace": true``, which returns
a per-stage span breakdown (``serve.map`` / ``serve.render`` plus the
in-process pipeline spans) alongside the normal response.  Request
counts and latencies are also recorded per op into the metrics
registry (``serve.requests.<op>`` / ``serve.request_s.<op>``, and
``serve.map_s.<engine>.<format>`` for mapping work).
``shutdown``
    Acknowledge, then stop the accept loop and tear the mapper down.

Every response carries ``"ok"``; failures answer ``{"ok": false,
"error": ...}`` and the connection stays usable.  SIGTERM/SIGINT (via
:func:`serve`) shut down gracefully: in-flight requests finish, the
socket file is unlinked, worker pools are closed.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..genome.sequence import encode
from ..obs import capture_trace, get_registry, host_metadata, span
from ..util.sync import maybe_sanitize_lock
from .engines import stats_dict
from .mapper import Mapper

PathLike = Union[str, Path]

#: Largest accepted request line (a guard against a runaway client;
#: ~64 MiB comfortably holds a few hundred thousand inline pairs).
MAX_REQUEST_BYTES = 64 * 1024 * 1024


class ServerError(RuntimeError):
    """The daemon could not start (e.g. the socket is already served)."""


@dataclass
class ServerStats:
    """Aggregate request counters, reported by the ``stats`` op.

    Every mutation runs under ``_lock``: connection threads record
    concurrently, and ``requests += 1`` / ``by_op`` get-and-add are
    exactly the lost-update shapes the RPL1002 lint flags.
    """

    started_monotonic: float = field(default_factory=time.monotonic)
    requests: int = 0
    errors: int = 0
    pairs_mapped: int = 0
    by_op: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=lambda: maybe_sanitize_lock("serve.stats"),
        repr=False, compare=False)

    def record(self, op: str, pairs: int = 0) -> None:
        with self._lock:
            self.requests += 1
            self.pairs_mapped += pairs
            self.by_op[op] = self.by_op.get(op, 0) + 1

    def count_error(self) -> None:
        with self._lock:
            self.errors += 1

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started_monotonic

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {"requests": self.requests, "errors": self.errors,
                    "pairs_mapped": self.pairs_mapped,
                    "uptime_s": round(self.uptime_s, 3),
                    "by_op": dict(self.by_op)}


# Any engine's stats dataclass as plain JSON types (one definition,
# shared with Mapper.engine_stats).
_stats_dict = stats_dict


def _units(stats: Dict[str, int]) -> int:
    """How many workload items a per-run stats dict accounts for
    (pairs for the paired engines, reads for single-read ones)."""
    for key in ("pairs_total", "pairs_seen", "reads_total"):
        if key in stats:
            return stats[key]
    return 0


class MapServer:
    """Serve mapping requests from one warm :class:`Mapper`.

    The mapper is exercised under a lock — requests are mapped one at
    a time (the pipeline itself fans out to the worker pool) — while
    connections are handled in threads, so a slow or idle client never
    blocks another client's requests, only overlapping *mapping* work
    is serialized.
    """

    def __init__(self, mapper: Mapper, socket_path: PathLike,
                 backlog: int = 16) -> None:
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover
            raise ServerError("repro serve requires UNIX-domain "
                              "sockets, which this platform lacks")
        self.mapper = mapper
        self.socket_path = str(socket_path)
        self.stats = ServerStats()
        # A SanitizedLock under REPRO_SANITIZE=1 (owner/order checks
        # in the concurrency stress tests), a plain Lock otherwise.
        self._map_lock = maybe_sanitize_lock("serve.map")
        self._stop = threading.Event()
        self._threads: list = []
        self._claim_socket(backlog)
        # Fork the worker pool now, while still single-threaded, so
        # the first request finds it warm.
        try:
            mapper.warm_up()
        except BaseException:
            self._listener.close()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            raise

    def _claim_socket(self, backlog: int) -> None:
        """Bind the socket path, refusing to evict a live daemon.

        A stale socket file (machine rebooted, daemon killed -9) is
        unlinked; one that still answers connections is somebody
        else's live server.
        """
        if os.path.exists(self.socket_path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(0.5)
            try:
                probe.connect(self.socket_path)
            except OSError:
                try:
                    os.unlink(self.socket_path)  # stale leftover
                except OSError as exc:
                    raise ServerError(
                        f"cannot reclaim stale socket "
                        f"{self.socket_path!r}: {exc}") from None
            else:
                probe.close()
                raise ServerError(
                    f"{self.socket_path!r} is already being served; "
                    "stop that daemon first (repro client shutdown)")
            finally:
                probe.close()
        self._listener = socket.socket(socket.AF_UNIX,
                                       socket.SOCK_STREAM)
        try:
            self._listener.bind(self.socket_path)
            self._listener.listen(backlog)
            # Wake the accept loop periodically to notice shutdown.
            self._listener.settimeout(0.2)
        except OSError as exc:
            self._listener.close()
            raise ServerError(
                f"cannot bind {self.socket_path!r}: {exc}") from None

    # -- main loop -----------------------------------------------------

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`request_shutdown`."""
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed under us during shutdown
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,),
                    name="repro-serve-conn", daemon=True)
                thread.start()
                self._threads.append(thread)
                self._threads = [t for t in self._threads
                                 if t.is_alive()]
        finally:
            self.close()

    def request_shutdown(self) -> None:
        """Ask the accept loop to stop (signal-handler safe)."""
        self._stop.set()

    def close(self) -> None:
        """Stop accepting, finish in-flight requests, release resources."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        # Let an in-flight mapping request finish before teardown:
        # mapping runs under _map_lock, so holding it here means the
        # mapper (and its worker pool) is never closed under an active
        # request — a request that slips in afterwards gets a clean
        # "Mapper is closed" error response instead of a truncated run.
        with self._map_lock:
            self.mapper.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    # -- connection handling -------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            reader = conn.makefile("rb")
            try:
                while not self._stop.is_set():
                    line = reader.readline(MAX_REQUEST_BYTES)
                    if not line:
                        return
                    if len(line) >= MAX_REQUEST_BYTES \
                            and not line.endswith(b"\n"):
                        # A partial read of an over-limit request:
                        # the rest of the line is still in the pipe,
                        # so answering and reading on would pair
                        # later responses with the wrong requests.
                        # Reject once and drop the connection.
                        self._count_error()
                        conn.sendall(json.dumps(
                            {"ok": False,
                             "error": "request exceeds "
                                      f"{MAX_REQUEST_BYTES} bytes; "
                                      "use map_file for large "
                                      "inputs"}).encode() + b"\n")
                        return
                    response = self._dispatch_line(line)
                    conn.sendall(json.dumps(response).encode()
                                 + b"\n")
                    if response.get("op") == "shutdown" \
                            and response.get("ok"):
                        self.request_shutdown()
                        return
            except (OSError, ValueError):
                return  # client went away mid-exchange
            finally:
                reader.close()

    def _count_error(self) -> None:
        """One failed request: the server total and, when metrics are
        on, the ``serve.errors`` counter (every error path goes
        through here so the two never drift)."""
        self.stats.count_error()
        obs = get_registry()
        if obs.enabled:
            obs.counter("serve.errors").inc()

    def _dispatch_line(self, line: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            self._count_error()
            return {"ok": False, "error": f"bad request: {exc}"}
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) \
            if isinstance(op, str) and not op.startswith("_") else None
        if handler is None:
            self._count_error()
            return {"ok": False, "op": op,
                    "error": f"unknown op {op!r}; available: map, "
                             "map_file, ping, shutdown, stats"}
        start = time.perf_counter()
        try:
            response = handler(request)
        except Exception as exc:  # keep serving after a bad request
            self._count_error()
            return {"ok": False, "op": op,
                    "error": f"{type(exc).__name__}: {exc}"}
        elapsed = time.perf_counter() - start
        obs = get_registry()
        if obs.enabled:
            obs.counter(f"serve.requests.{op}").inc()
            obs.histogram(f"serve.request_s.{op}").observe(elapsed)
        response.setdefault("ok", True)
        response["op"] = op
        response["elapsed_s"] = round(elapsed, 6)
        return response

    # -- operations ----------------------------------------------------

    def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from .registry import ENGINES, OUTPUT_FORMATS

        self.stats.record("ping")
        index = self.mapper.index
        return {"pid": os.getpid(),
                "uptime_s": round(self.stats.uptime_s, 3),
                "index": index.path if index is not None else None,
                "workers": self.mapper.config.workers,
                "engine": self.mapper.config.engine,
                "engines": list(ENGINES.names()),
                "formats": list(OUTPUT_FORMATS.names()),
                "config": self.mapper.config.to_dict()}

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.stats.record("stats")
        return {"server": self.stats.to_dict(),
                "mapper": _stats_dict(self.mapper.stats),
                "engines": self.mapper.engine_stats(),
                "metrics": get_registry().snapshot(),
                "host": host_metadata()}

    def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.stats.record("shutdown")
        return {"goodbye": True}

    @staticmethod
    def _workload(request: Dict[str, Any]) -> tuple:
        """The per-request engine/format overrides, validated as names.

        ``None`` means "the facade's configured default" — the one
        warm facade resolves names to (lazily-built, reused) engine
        instances itself.  Both names are checked against their
        registries *here*, before any mapping work, so a typo'd
        ``format`` fails in microseconds instead of after the whole
        request has been mapped.
        """
        from .registry import ENGINES, OUTPUT_FORMATS

        engine = request.get("engine")
        if engine is not None and not isinstance(engine, str):
            raise ValueError('"engine" must be an engine name string')
        fmt = request.get("format")
        if fmt is not None and not isinstance(fmt, str):
            raise ValueError('"format" must be a format name string')
        if engine is not None:
            ENGINES.require(engine)
        if fmt is not None:
            OUTPUT_FORMATS.require(fmt)
        return engine, fmt

    @staticmethod
    def _decode_pairs(pairs) -> list:
        if not isinstance(pairs, list):
            raise ValueError('"pairs" must be a list of '
                             '[read1, read2, name?] entries')
        decoded = []
        for number, entry in enumerate(pairs):
            if isinstance(entry, dict):
                read1, read2 = entry["read1"], entry["read2"]
                name = entry.get("name", f"pair{number}")
            else:
                if len(entry) not in (2, 3):
                    raise ValueError(f"pair {number}: expected "
                                     "[read1, read2, name?]")
                read1, read2 = entry[0], entry[1]
                name = entry[2] if len(entry) > 2 else f"pair{number}"
            decoded.append((encode(read1, allow_n=True),
                            encode(read2, allow_n=True), str(name)))
        return decoded

    @staticmethod
    def _decode_reads(reads) -> list:
        if not isinstance(reads, list):
            raise ValueError('"reads" must be a list of [read, name?] '
                             "entries")
        decoded = []
        for number, entry in enumerate(reads):
            if isinstance(entry, dict):
                read = entry["read"]
                name = entry.get("name", f"read{number}")
            elif isinstance(entry, str):
                read, name = entry, f"read{number}"
            else:
                if len(entry) not in (1, 2):
                    raise ValueError(f"read {number}: expected "
                                     "[read, name?]")
                read = entry[0]
                name = entry[1] if len(entry) > 1 else f"read{number}"
            decoded.append((encode(read, allow_n=True), str(name)))
        return decoded

    def _op_map(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from .engines import INPUT_SINGLE

        engine_name, fmt = self._workload(request)
        with self._map_lock:
            engine = self.mapper.engine(engine_name)
            if engine.input_kind == INPUT_SINGLE:
                if "pairs" in request:
                    raise ValueError(
                        f'engine {engine.name!r} maps single reads; '
                        'send "reads", not "pairs"')
                decoded = self._decode_reads(request.get("reads"))
            else:
                if "reads" in request:
                    raise ValueError(
                        f'engine {engine.name!r} maps read pairs; '
                        'send "pairs", not "reads"')
                decoded = self._decode_pairs(request.get("pairs"))
            format_name = fmt if fmt is not None \
                else self.mapper.config.output_format

            def run():
                # The wire lines are produced by the exact same map +
                # lines path with or without tracing — the trace flag
                # never changes the payload bytes.
                with span("serve.map"):
                    results = self.mapper.map(decoded,
                                              engine=engine.name)
                with span("serve.render"):
                    return list(self.mapper.lines(
                        results, format=fmt,
                        header=bool(request.get("header", False))))

            started = time.perf_counter()
            trace = None
            if request.get("trace"):
                with capture_trace() as tracer:
                    lines = run()
                trace = tracer.to_dicts()
            else:
                lines = run()
            self._record_map_metrics(engine.name, format_name,
                                     time.perf_counter() - started)
            stats = _stats_dict(self.mapper.last_stats)
        self.stats.record("map", pairs=len(decoded))
        response = {"pairs": len(decoded), "lines": lines,
                    "engine": engine.name, "format": format_name,
                    "stats": stats}
        if trace is not None:
            response["trace"] = trace
        if format_name == "sam":
            response["sam"] = lines  # historical alias
        return response

    def _op_map_file(self, request: Dict[str, Any]) -> Dict[str, Any]:
        engine_name, fmt = self._workload(request)
        for key in ("reads1", "out"):
            if not isinstance(request.get(key), str):
                raise ValueError(f'"{key}" must be a path string')
        reads2 = request.get("reads2")
        if reads2 is not None and not isinstance(reads2, str):
            raise ValueError('"reads2" must be a path string (omit it '
                             "for single-read engines)")
        with self._map_lock:
            engine = self.mapper.engine(engine_name)
            format_name = fmt if fmt is not None \
                else self.mapper.config.output_format

            def run():
                with span("serve.map"):
                    results = self.mapper.map_file(
                        request["reads1"], reads2, engine=engine.name)
                    return self.mapper.write(results, request["out"],
                                             format=fmt)

            started = time.perf_counter()
            trace = None
            if request.get("trace"):
                with capture_trace() as tracer:
                    records = run()
                trace = tracer.to_dicts()
            else:
                records = run()
            self._record_map_metrics(engine.name, format_name,
                                     time.perf_counter() - started)
            stats = _stats_dict(self.mapper.last_stats)
        units = _units(stats)
        self.stats.record("map_file", pairs=units)
        response = {"pairs": units, "records": records,
                    "out": request["out"], "engine": engine.name,
                    "format": format_name, "stats": stats}
        if trace is not None:
            response["trace"] = trace
        return response

    @staticmethod
    def _record_map_metrics(engine_name: str, format_name: str,
                            elapsed: float) -> None:
        obs = get_registry()
        if obs.enabled:
            obs.histogram(
                f"serve.map_s.{engine_name}.{format_name}"
            ).observe(elapsed)


def serve(mapper: Mapper, socket_path: PathLike,
          install_signal_handlers: bool = True) -> MapServer:
    """Run a :class:`MapServer` until shutdown (the CLI entry point).

    Blocks in the accept loop; SIGTERM/SIGINT trigger the same
    graceful path as a ``shutdown`` request.  Returns the (closed)
    server so callers can read its final :attr:`MapServer.stats`.
    """
    server = MapServer(mapper, socket_path)
    # Signal handlers can only be installed from the main thread; a
    # server hosted in a background thread (tests, embedding) relies
    # on shutdown requests instead.
    if install_signal_handlers \
            and threading.current_thread() is threading.main_thread():
        import signal

        def _graceful(signum, frame):
            server.request_shutdown()

        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
    server.serve_forever()
    return server
