"""Back-compat shim: the daemon now lives in :mod:`repro.serve`.

PR 4 introduced the serve daemon here; the concurrent serving tier
(TCP + UNIX listeners, request coalescing, backpressure, deadlines)
replaced it with the layered :mod:`repro.serve` package.  Every public
name this module ever exported is re-exported, so ``from
repro.api.server import MapServer`` (and the lazy ``repro.api``
exports that route here) keep working unchanged.

``MAX_REQUEST_BYTES`` lives in :mod:`repro.serve.protocol` now; the
name here is a plain alias kept for import compatibility — patch the
protocol module to change the live limit.
"""

from __future__ import annotations

from ..serve.listeners import ServerError
from ..serve.protocol import MAX_REQUEST_BYTES, ServerStats
from ..serve.scheduler import ServeSettings
from ..serve.server import MapServer, serve

__all__ = ["MAX_REQUEST_BYTES", "MapServer", "ServeSettings",
           "ServerError", "ServerStats", "serve"]
