"""Mason-like read simulation: paired-end, single-end, and long reads.

The paper's datasets are (a) real GIAB HG002 2x150bp paired-end reads and
(b) Mason-simulated reads for the sensitivity studies (§7.7, §7.8).  Neither
real data nor the Mason binary is available here, so this module implements
the equivalent generative process:

* fragments are drawn from a (diploid donor or plain reference) genome with
  a Gaussian insert-size model, and both ends are read inward (FR
  orientation) — the geometry paired-adjacency filtering exploits (§4.5);
* sequencing errors follow either the *Mason default* profile (a uniform
  split across substitutions, insertions and deletions at a fixed per-base
  rate — used for Figs 12 and 13), or a *GIAB-like* profile whose per-
  fragment error rate is gamma-overdispersed.  The overdispersion is what
  makes a realistic minority of read-pairs carry many errors, which is why
  the paper's exact-match rates (§3.2, Observation 1) sit far below what an
  i.i.d. error model would predict.

Every simulated read carries its ground-truth reference interval, which the
mapeval experiments (Fig 13) and the accuracy analyses consume directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .reference import ReferenceGenome
from .sequence import ALPHABET_SIZE, reverse_complement
from .variants import DiploidDonor, Haplotype


class SimulationError(ValueError):
    """Raised for infeasible simulation requests."""


@dataclass(frozen=True)
class ErrorModel:
    """Per-base sequencing error process.

    ``mean_rate`` is the expected per-base error probability.  When
    ``overdispersion_shape`` is positive, each *fragment* draws its own rate
    from a Gamma distribution with that shape (scaled to the mean), which
    concentrates errors on a minority of fragments; zero means every base
    uses ``mean_rate`` i.i.d. (Mason's default behaviour).
    """

    mean_rate: float = 0.004
    substitution_fraction: float = 1.0 / 3.0
    insertion_fraction: float = 1.0 / 3.0
    deletion_fraction: float = 1.0 / 3.0
    overdispersion_shape: float = 0.0

    def __post_init__(self) -> None:
        total = (self.substitution_fraction + self.insertion_fraction
                 + self.deletion_fraction)
        if not np.isclose(total, 1.0):
            raise SimulationError("error-type fractions must sum to 1")
        if self.mean_rate < 0 or self.mean_rate >= 0.5:
            raise SimulationError("mean_rate must be in [0, 0.5)")

    @classmethod
    def mason_default(cls, rate: float = 0.004) -> "ErrorModel":
        """Mason's default: uniform substitution/insertion/deletion split."""
        return cls(mean_rate=rate)

    @classmethod
    def giab_like(cls) -> "ErrorModel":
        """Profile calibrated to the paper's GIAB observations (§3).

        Substitution-dominated (Illumina/BGISEQ-like) with fragment-level
        overdispersion; see DESIGN.md for the calibration targets
        (single-end full-read exact rate ~56%, paired ~37%, Observation 1
        ~86%, Observation 3 ~70%).
        """
        return cls(mean_rate=0.005, substitution_fraction=0.84,
                   insertion_fraction=0.08, deletion_fraction=0.08,
                   overdispersion_shape=0.45)

    @classmethod
    def perfect(cls) -> "ErrorModel":
        """No sequencing errors at all (unit tests)."""
        return cls(mean_rate=0.0)

    def draw_fragment_rate(self, rng: np.random.Generator) -> float:
        """Draw the per-base error rate used for one fragment."""
        if self.overdispersion_shape <= 0 or self.mean_rate == 0:
            return self.mean_rate
        scale = self.mean_rate / self.overdispersion_shape
        return float(min(0.45, rng.gamma(self.overdispersion_shape, scale)))


@dataclass(frozen=True)
class PairedEndProfile:
    """Library geometry for paired-end sequencing."""

    read_length: int = 150
    insert_mean: float = 350.0
    insert_sd: float = 35.0

    def __post_init__(self) -> None:
        if self.insert_mean < 2 * self.read_length:
            raise SimulationError(
                "insert size must be at least twice the read length")


@dataclass(frozen=True)
class SimulatedRead:
    """A simulated read with its ground-truth reference interval.

    ``ref_start``/``ref_end`` bracket where the read's template came from in
    *reference* coordinates (after undoing donor variants); ``strand`` is
    ``"+"`` when the read sequence matches the forward reference.
    """

    name: str
    codes: np.ndarray
    chromosome: str
    ref_start: int
    ref_end: int
    strand: str
    mate: int = 0  # 0 = single-end, 1/2 = paired-end mate index

    def __len__(self) -> int:
        return len(self.codes)


@dataclass(frozen=True)
class SimulatedPair:
    """A simulated read pair plus its fragment-level ground truth."""

    read1: SimulatedRead
    read2: SimulatedRead
    fragment_start: int
    fragment_end: int
    chromosome: str

    @property
    def name(self) -> str:
        return self.read1.name.rsplit("/", 1)[0]

    @property
    def insert_size(self) -> int:
        return self.fragment_end - self.fragment_start


class ReadSimulator:
    """Draws reads from a reference genome or a diploid donor."""

    def __init__(self, reference: ReferenceGenome,
                 donor: Optional[DiploidDonor] = None,
                 error_model: Optional[ErrorModel] = None,
                 profile: Optional[PairedEndProfile] = None,
                 seed: int = 0) -> None:
        self.reference = reference
        self.donor = donor
        self.error_model = error_model or ErrorModel.giab_like()
        self.profile = profile or PairedEndProfile()
        self.rng = np.random.default_rng(seed)
        self._names = list(reference.names)
        lengths = np.array([reference.length(n) for n in self._names],
                           dtype=float)
        self._weights = lengths / lengths.sum()

    # -- template sampling -------------------------------------------------

    def _pick_template(self, fragment_length: int
                       ) -> Tuple[str, np.ndarray, int, "_CoordMap"]:
        """Pick a chromosome/haplotype and a fragment window on it."""
        for _ in range(64):
            name = self.rng.choice(self._names, p=self._weights)
            if self.donor is not None:
                hap_index = int(self.rng.integers(0, 2))
                haplotype = self.donor.haplotypes[name][hap_index]
                source = haplotype.codes
                coord = _CoordMap(haplotype)
            else:
                source = self.reference.fetch(name, 0,
                                              self.reference.length(name))
                coord = _CoordMap(None)
            if len(source) > fragment_length:
                start = int(self.rng.integers(0,
                                              len(source) - fragment_length))
                return name, source, start, coord
        raise SimulationError("no chromosome long enough for the fragment")

    # -- error process -----------------------------------------------------

    def _read_off_template(self, template: np.ndarray, length: int,
                           rate: float) -> np.ndarray:
        """Read ``length`` bases off ``template`` with the error process.

        Walks the template the way a sequencer does: a deletion skips a
        template base, an insertion emits a random base without consuming
        one, a substitution corrupts the consumed base.
        """
        model = self.error_model
        out = np.empty(length, dtype=np.uint8)
        produced = 0
        cursor = 0
        rng = self.rng
        while produced < length:
            if cursor >= len(template):
                # Template exhausted (rare, heavy-deletion fragments): pad
                # with random bases, as a sequencer reads into adapter.
                out[produced:] = rng.integers(0, ALPHABET_SIZE,
                                              size=length - produced,
                                              dtype=np.uint8)
                break
            if rate > 0 and rng.random() < rate:
                roll = rng.random()
                if roll < model.substitution_fraction:
                    shift = int(rng.integers(1, ALPHABET_SIZE))
                    out[produced] = (int(template[cursor]) + shift) % 4
                    produced += 1
                    cursor += 1
                elif roll < model.substitution_fraction + \
                        model.insertion_fraction:
                    out[produced] = rng.integers(0, ALPHABET_SIZE)
                    produced += 1
                else:  # deletion
                    cursor += 1
            else:
                out[produced] = template[cursor]
                produced += 1
                cursor += 1
        return out

    # -- public API --------------------------------------------------------

    def simulate_pairs(self, count: int,
                       name_prefix: str = "pair") -> List[SimulatedPair]:
        """Simulate ``count`` FR-oriented read pairs."""
        profile = self.profile
        pairs: List[SimulatedPair] = []
        for index in range(count):
            insert = max(2 * profile.read_length,
                         int(round(self.rng.normal(profile.insert_mean,
                                                   profile.insert_sd))))
            name, source, start, coord = self._pick_template(insert)
            rate = self.error_model.draw_fragment_rate(self.rng)
            slack = profile.read_length // 2
            fwd_template = source[start:start + profile.read_length + slack]
            rev_template = reverse_complement(
                source[max(0, start + insert - profile.read_length - slack):
                       start + insert])
            read1_codes = self._read_off_template(fwd_template,
                                                  profile.read_length, rate)
            read2_codes = self._read_off_template(rev_template,
                                                  profile.read_length, rate)
            ref_start = coord.to_reference(start)
            ref_end = coord.to_reference(start + insert)
            r1_end = coord.to_reference(start + profile.read_length)
            r2_start = coord.to_reference(start + insert
                                          - profile.read_length)
            base = f"{name_prefix}{index}"
            read1 = SimulatedRead(f"{base}/1", read1_codes, name,
                                  ref_start, r1_end, "+", mate=1)
            read2 = SimulatedRead(f"{base}/2", read2_codes, name,
                                  r2_start, ref_end, "-", mate=2)
            pairs.append(SimulatedPair(read1, read2, ref_start, ref_end,
                                       name))
        return pairs

    def simulate_single(self, count: int,
                        name_prefix: str = "read") -> List[SimulatedRead]:
        """Simulate ``count`` single-end reads (forward strand only)."""
        length = self.profile.read_length
        reads: List[SimulatedRead] = []
        for index in range(count):
            name, source, start, coord = self._pick_template(length + 20)
            rate = self.error_model.draw_fragment_rate(self.rng)
            template = source[start:start + length + 20]
            codes = self._read_off_template(template, length, rate)
            reads.append(SimulatedRead(f"{name_prefix}{index}", codes, name,
                                       coord.to_reference(start),
                                       coord.to_reference(start + length),
                                       "+"))
        return reads

    def simulate_long_reads(self, count: int, length_mean: float = 9569.0,
                            length_sd: float = 2000.0,
                            error_rate: float = 0.005,
                            name_prefix: str = "long"
                            ) -> List[SimulatedRead]:
        """Simulate PacBio-HiFi-like long reads (§4.7 long-read mode).

        The paper's long-read dataset averages 9,569 bp with HiFi-level
        accuracy; the default error rate follows that regime.
        """
        longest = max(self.reference.length(name)
                      for name in self.reference.names)
        reads: List[SimulatedRead] = []
        for index in range(count):
            length = max(500, int(self.rng.normal(length_mean, length_sd)))
            length = min(length, longest - 200)
            name, source, start, coord = self._pick_template(length + 100)
            template = source[start:start + length + 100]
            codes = self._read_off_template(template, length, error_rate)
            reads.append(SimulatedRead(f"{name_prefix}{index}", codes, name,
                                       coord.to_reference(start),
                                       coord.to_reference(start + length),
                                       "+"))
        return reads


class _CoordMap:
    """Donor→reference coordinate mapping (identity when no donor)."""

    def __init__(self, haplotype: Optional[Haplotype]) -> None:
        self._haplotype = haplotype

    def to_reference(self, position: int) -> int:
        if self._haplotype is None:
            return position
        return self._haplotype.to_reference(
            min(position, len(self._haplotype)))
