"""PAF (Pairwise mApping Format) output, minimap2-flavoured.

PAF is the line-per-alignment interchange format of the long-read
ecosystem: twelve mandatory tab-separated columns (query name/length/
start/end, strand, target name/length/start/end, residue matches,
alignment block length, mapping quality) followed by SAM-style typed
tags.  This module renders the reproduction's alignment records as PAF,
factored exactly like the SAM path — :func:`paf_record_lines` is the
one renderer, and :class:`PafWriter` writes those same lines to a file
— so the daemon's wire output is byte-identical to offline file output.

Differences from SAM worth knowing:

* PAF has **no header** and **no unmapped rows** — an unmapped record
  renders to nothing (the record count of a PAF file is therefore the
  mapped-record count, not the read count);
* coordinates are 0-based half-open on both query and target;
* the CIGAR travels in the ``cg:Z:`` tag, and the alignment score in
  ``AS:i:`` (matching minimap2's tag vocabulary).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from .results import ResultLineWriter, result_records

#: CIGAR ops that consume query bases / reference bases / count as
#: aligned block columns, per the PAF column definitions.
_CLIP_OPS = frozenset("SH")
_MATCH_OPS = frozenset("M=")
_BLOCK_OPS = frozenset("MIDX=")


def paf_line(record, reference=None) -> Optional[str]:
    """One record as a PAF line, or ``None`` for an unmapped record.

    ``reference`` supplies the target sequence length column; without
    it the column is 0 (some consumers tolerate that, a
    :class:`~repro.genome.reference.ReferenceGenome` makes it exact).
    """
    if not record.mapped:
        return None
    ops = record.cigar.ops
    lead = 0
    for length, op in ops:
        if op not in _CLIP_OPS:
            break
        lead += length
    tail = 0
    for length, op in reversed(ops):
        if op not in _CLIP_OPS:
            break
        tail += length
    if record.strand == "-":
        # The mappers align the reverse-complemented read, so the CIGAR
        # (and its clips) are in RC orientation; PAF query coordinates
        # are on the ORIGINAL read strand, which mirrors the clips.
        lead, tail = tail, lead
    if record.read_codes is not None:
        query_length = len(record.read_codes)
    else:
        query_length = record.cigar.read_length
    matches = sum(length for length, op in ops if op in _MATCH_OPS)
    block = sum(length for length, op in ops if op in _BLOCK_OPS)
    target_length = 0
    if reference is not None and record.chromosome in reference.names:
        target_length = reference.length(record.chromosome)
    fields = [
        record.query_name,
        str(query_length),
        str(lead),
        str(query_length - tail),
        record.strand,
        record.chromosome,
        str(target_length),
        str(record.position),
        str(record.reference_end),
        str(matches),
        str(block),
        str(record.mapq),
        f"AS:i:{record.score}",
        f"XM:Z:{record.method}",
        f"cg:Z:{record.cigar}",
    ]
    return "\t".join(fields)


def paf_header_lines(reference=None) -> List[str]:
    """PAF has no header; one definition keeps the format table uniform."""
    return []


def paf_record_lines(results: Iterable, reference=None) -> Iterator[str]:
    """Render a result stream as PAF lines (the daemon's wire form).

    Lazy: pulls one result at a time and emits a line per *mapped*
    record — unmapped records are skipped, per PAF convention.
    """
    for result in results:
        for record in result_records(result):
            line = paf_line(record, reference)
            if line is not None:
                yield line


class PafWriter(ResultLineWriter):
    """Incremental PAF file writer over :func:`paf_record_lines`.

    :attr:`count` is the number of PAF lines written — mapped records
    only, so it can be lower than the SAM record count of the same run.
    """

    def result_lines(self, result) -> Iterator[str]:
        return paf_record_lines((result,), self.reference)
