"""Germline variant planting: build donor haplotypes from a reference.

The accuracy experiments (Table 7, Fig 13) need reads drawn from a *donor*
genome that differs from the reference by a known truth set of SNPs and
INDELs (the role GIAB's HG002 benchmark plays in the paper).  This module
plants variants into a reference and produces:

* a diploid donor — two :class:`Haplotype` objects per genome, each a fully
  materialized mutated sequence plus a coordinate map back to the reference;
* the truth set, as a list of :class:`Variant` records.

Coordinate mapping matters: the read simulator samples positions on the
donor, while mapping accuracy is judged in reference coordinates, so each
haplotype carries a piecewise-linear donor→reference map.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .reference import ReferenceGenome
from .sequence import decode, random_sequence


@dataclass(frozen=True)
class Variant:
    """One truth variant in reference coordinates (0-based).

    ``ref``/``alt`` follow VCF conventions: a SNP has one base in each; an
    insertion/deletion is left-anchored on the preceding reference base.
    ``genotype`` is ``"het"`` (one haplotype) or ``"hom"`` (both).
    """

    chromosome: str
    position: int
    ref: str
    alt: str
    genotype: str = "het"

    @property
    def kind(self) -> str:
        """``"SNP"``, ``"INS"`` or ``"DEL"``."""
        if len(self.ref) == 1 and len(self.alt) == 1:
            return "SNP"
        return "INS" if len(self.alt) > len(self.ref) else "DEL"

    @property
    def key(self) -> Tuple[str, int, str, str]:
        """Identity tuple used when comparing call sets against truth."""
        return (self.chromosome, self.position, self.ref, self.alt)


@dataclass
class Haplotype:
    """One donor haplotype of one chromosome, with a donor→reference map.

    ``donor_breaks[i]`` / ``ref_breaks[i]`` are the donor and reference
    coordinates at the start of the i-th colinear block; within a block the
    map is the identity plus a constant offset.
    """

    chromosome: str
    codes: np.ndarray
    donor_breaks: Sequence[int]
    ref_breaks: Sequence[int]

    def to_reference(self, donor_position: int) -> int:
        """Map a donor coordinate to the corresponding reference coordinate."""
        if not 0 <= donor_position <= len(self.codes):
            raise ValueError(f"donor position {donor_position} out of range")
        index = bisect.bisect_right(self.donor_breaks, donor_position) - 1
        offset = self.ref_breaks[index] - self.donor_breaks[index]
        return donor_position + offset

    def __len__(self) -> int:
        return len(self.codes)


@dataclass
class DiploidDonor:
    """A diploid donor genome: two haplotypes per chromosome + truth set."""

    haplotypes: Dict[str, Tuple[Haplotype, Haplotype]]
    truth: List[Variant]

    @property
    def chromosome_names(self) -> Tuple[str, ...]:
        return tuple(self.haplotypes)

    def truth_by_kind(self) -> Dict[str, List[Variant]]:
        """Split the truth set into SNP and INDEL subsets (paper Table 7)."""
        out: Dict[str, List[Variant]] = {"SNP": [], "INDEL": []}
        for variant in self.truth:
            out["SNP" if variant.kind == "SNP" else "INDEL"].append(variant)
        return out


def plant_variants(
    rng: np.random.Generator,
    reference: ReferenceGenome,
    snp_rate: float = 1e-3,
    indel_rate: float = 2e-4,
    max_indel_length: int = 6,
    hom_fraction: float = 0.4,
) -> DiploidDonor:
    """Plant SNPs and INDELs into ``reference``, building a diploid donor.

    Default rates follow the paper's Mason configuration (§7.8): SNP rate
    1e-3 and INDEL rate 2e-4.  Variant positions are spaced so that edits
    never overlap, which keeps truth comparison unambiguous.
    """
    truth: List[Variant] = []
    haplotypes: Dict[str, Tuple[Haplotype, Haplotype]] = {}
    for name in reference.names:
        ref_codes = reference.fetch(name, 0, reference.length(name))
        plan = _sample_variant_plan(rng, name, ref_codes, snp_rate,
                                    indel_rate, max_indel_length,
                                    hom_fraction)
        truth.extend(plan)
        hap0 = _apply_variants(name, ref_codes,
                               [v for v in plan])  # haplotype 0: all variants
        hap1 = _apply_variants(name, ref_codes,
                               [v for v in plan if v.genotype == "hom"])
        haplotypes[name] = (hap0, hap1)
    return DiploidDonor(haplotypes=haplotypes, truth=truth)


_BASES = "ACGT"


def _sample_variant_plan(rng: np.random.Generator, chromosome: str,
                         ref_codes: np.ndarray, snp_rate: float,
                         indel_rate: float, max_indel_length: int,
                         hom_fraction: float) -> List[Variant]:
    length = len(ref_codes)
    n_snps = int(rng.poisson(snp_rate * length))
    n_indels = int(rng.poisson(indel_rate * length))
    # Reserve a guard band around every variant so edits never overlap.
    guard = max_indel_length + 2
    candidate_sites = np.arange(1, max(2, length - guard), guard)
    n_sites = min(n_snps + n_indels, len(candidate_sites))
    if n_sites == 0:
        return []
    positions = sorted(rng.choice(candidate_sites, size=n_sites,
                                  replace=False).tolist())
    types = np.array([True] * n_snps + [False] * n_indels)[:n_sites]
    rng.shuffle(types)
    variants: List[Variant] = []
    for pos, is_snp in zip(positions, types.tolist()):
        genotype = "hom" if rng.random() < hom_fraction else "het"
        if is_snp:
            ref_base = decode(ref_codes[pos:pos + 1])
            alt_code = (int(ref_codes[pos]) + int(rng.integers(1, 4))) % 4
            variants.append(Variant(chromosome, pos, ref_base,
                                    _BASES[alt_code], genotype))
        else:
            size = int(rng.integers(1, max_indel_length + 1))
            anchor = decode(ref_codes[pos:pos + 1])
            if rng.random() < 0.5:  # insertion
                inserted = decode(random_sequence(rng, size))
                variants.append(Variant(chromosome, pos, anchor,
                                        anchor + inserted, genotype))
            else:  # deletion
                deleted = decode(ref_codes[pos:pos + 1 + size])
                variants.append(Variant(chromosome, pos, deleted,
                                        anchor, genotype))
    return variants


def _apply_variants(chromosome: str, ref_codes: np.ndarray,
                    variants: List[Variant]) -> Haplotype:
    """Materialize one haplotype and its donor→reference coordinate map."""
    from .sequence import encode  # local import avoids a cycle at module load

    pieces: List[np.ndarray] = []
    donor_breaks: List[int] = [0]
    ref_breaks: List[int] = [0]
    ref_cursor = 0
    donor_cursor = 0
    for variant in sorted(variants, key=lambda v: v.position):
        pos = variant.position
        pieces.append(ref_codes[ref_cursor:pos])
        donor_cursor += pos - ref_cursor
        alt_codes = encode(variant.alt)
        pieces.append(alt_codes)
        donor_cursor += len(alt_codes)
        ref_cursor = pos + len(variant.ref)
        donor_breaks.append(donor_cursor)
        ref_breaks.append(ref_cursor)
    pieces.append(ref_codes[ref_cursor:])
    codes = np.concatenate(pieces) if pieces else ref_codes.copy()
    return Haplotype(chromosome=chromosome, codes=codes,
                     donor_breaks=donor_breaks, ref_breaks=ref_breaks)
