"""The engine-polymorphic mapping result record and writer substrate.

Every mapping engine of the reproduction — the GenPair pipeline, the
baseline ``Mm2LikeMapper``, and the chunk-voting ``LongReadMapper`` —
emits a different native shape (a ``PairResult``, a record triple, a
bare :class:`~repro.genome.sam.AlignmentRecord`).  :class:`MappingResult`
is the one record the public API hands around instead: a named group of
one or two alignment records plus the engine/stage provenance, so output
writers, the serving daemon, and the variant-calling post-stage consume
every engine through a single shape.

:func:`result_records` is the tolerant accessor the writers use: it
accepts a :class:`MappingResult`, a legacy pipeline ``PairResult``
(``record1``/``record2`` attributes), or a bare ``AlignmentRecord``,
and returns the tuple of records to serialize — which is what keeps the
GenPair SAM output byte-identical across the API redesign.

:class:`ResultLineWriter` is the shared incremental file writer behind
the non-SAM output formats (PAF, JSONL): subclasses provide the line
renderer, and the base class guarantees the file output is exactly the
rendered lines joined with newlines — the same lines the daemon streams
over its socket, so wire output and file output cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Tuple, Union

PathLike = Union[str, Path]


@dataclass
class MappingResult:
    """One workload item's mapping outcome, engine-agnostic.

    ``records`` holds both mates for paired-end engines and a single
    record for single-read engines; ``engine`` names the registry entry
    that produced it and ``stage`` the engine's own outcome label
    (e.g. the GenPair Fig 10 stage vocabulary, or ``proper_pair`` /
    ``unmapped`` for the baseline mapper).
    """

    name: str
    records: Tuple
    engine: str = ""
    stage: str = ""
    orientation: str = "fr"
    joint_score: int = 0

    @property
    def mapped(self) -> bool:
        return any(record.mapped for record in self.records)

    @property
    def record1(self):
        return self.records[0]

    @property
    def record2(self):
        return self.records[1] if len(self.records) > 1 else None


def result_records(result) -> Tuple:
    """The alignment records a result carries, whatever its shape.

    Accepts a :class:`MappingResult` (``records`` tuple), a pipeline
    ``PairResult`` (``record1``/``record2``), or a bare record (an
    object that renders itself via ``to_sam_line``).
    """
    records = getattr(result, "records", None)
    if records is not None:
        return tuple(records)
    if hasattr(result, "record1"):
        record2 = getattr(result, "record2", None)
        if record2 is None:
            return (result.record1,)
        return (result.record1, record2)
    if hasattr(result, "to_sam_line"):
        return (result,)
    raise TypeError(
        f"cannot extract alignment records from {type(result).__name__!r}"
    )


class ResultLineWriter:
    """Incremental line-oriented result writer (PAF/JSONL base).

    Mirrors :class:`~repro.genome.sam.SamWriter`'s contract — header up
    front, records as they arrive, ``count``/``drain``/``flush``/
    context manager — over a subclass-provided line renderer.  ``count``
    is the number of record lines written (header lines excluded).
    """

    def __init__(self, path: PathLike, reference=None) -> None:
        self.path = str(path)
        self.reference = reference
        self.count = 0
        self._handle = open(path, "w")
        try:
            for line in self.header_lines():
                self._handle.write(line + "\n")
        except Exception:
            self._handle.close()
            raise

    # -- subclass surface ----------------------------------------------

    def header_lines(self) -> List[str]:
        """Lines written once, before any record (default: none)."""
        return []

    def result_lines(self, result) -> Iterable[str]:
        """The lines one result renders to (may be empty)."""
        raise NotImplementedError

    # -- writing -------------------------------------------------------

    def write_result(self, result) -> None:
        """Append one mapping result (however many lines it renders)."""
        for line in self.result_lines(result):
            self._handle.write(line + "\n")
            self.count += 1

    def drain(self, results: Iterable) -> int:
        """Write a lazy result stream as it arrives; returns the number
        of results drained by this call (flushes at stream end)."""
        drained = 0
        for result in results:
            self.write_result(result)
            drained += 1
        self.flush()
        return drained

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "ResultLineWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
