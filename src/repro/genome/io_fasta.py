"""Minimal FASTA/FASTQ reading and writing, plus streaming paired input.

The reproduction generates its own data, but a downstream user will want to
feed real files through the pipeline, and the examples round-trip datasets to
disk.  Only the features the pipeline needs are implemented: plain
(optionally multi-line) FASTA, and four-line FASTQ with dummy qualities.

Paired input goes through :func:`iter_pairs_chunked` (or its flat wrapper
:func:`iter_pairs`): the two FASTQ files are walked in lockstep in
O(chunk) memory, R1/R2 record names are checked for agreement, and a
truncated or unequal pair of files raises :class:`FastaError` instead of
silently dropping the tail the way ``zip`` would.  Single-read input
(long-read workloads) goes through :func:`iter_reads_chunked` /
:func:`iter_reads` with the same strictness: truncated four-line
records and mismatched ``+`` separator lines raise loudly.

:func:`read_ahead` overlaps parsing with downstream work: it drives any
iterator from a background thread through a bounded buffer, so the
streaming pipeline's FASTQ reader stays a few chunks ahead of the
mapping workers instead of alternating read / map / read / map.
"""

from __future__ import annotations

import itertools
import queue
import threading
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Tuple, TypeVar, Union

import numpy as np

from .reference import ReferenceGenome
from .sequence import decode, encode

PathLike = Union[str, Path]
OptionalChunk = Union[int, None]
ItemT = TypeVar("ItemT")

#: Default pairs per chunk of :func:`iter_pairs_chunked` — matches the
#: pipeline's batched engine granularity a few times over so one chunk
#: amortizes parsing without holding a whole dataset.
DEFAULT_PAIR_CHUNK = 4096


class FastaError(ValueError):
    """Raised for malformed FASTA/FASTQ input."""


def read_fasta(path: PathLike) -> "ReferenceGenome":
    """Read a FASTA file into a :class:`ReferenceGenome`.

    ``N`` bases are accepted and preserved; headers are truncated at the
    first whitespace, matching common mapper behaviour.
    """
    chromosomes: Dict[str, np.ndarray] = {}
    name = None
    chunks: List[str] = []
    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    chromosomes[name] = encode("".join(chunks), allow_n=True)
                name = line[1:].split()[0]
                if not name:
                    raise FastaError("empty FASTA header")
                if name in chromosomes:
                    raise FastaError(f"duplicate sequence name {name!r}")
                chunks = []
            else:
                if name is None:
                    raise FastaError("sequence data before first header")
                chunks.append(line)
    if name is not None:
        chromosomes[name] = encode("".join(chunks), allow_n=True)
    return ReferenceGenome(chromosomes)


def write_fasta(path: PathLike, genome: ReferenceGenome,
                line_width: int = 70) -> None:
    """Write a :class:`ReferenceGenome` to a FASTA file."""
    with open(path, "w") as handle:
        for name in genome.names:
            handle.write(f">{name}\n")
            seq = genome.sequence(name)
            for start in range(0, len(seq), line_width):
                handle.write(seq[start:start + line_width] + "\n")


def read_fastq(path: PathLike) -> Iterator[Tuple[str, np.ndarray]]:
    """Yield ``(name, codes)`` records from a FASTQ file."""
    with open(path) as handle:
        while True:
            header = handle.readline()
            if not header:
                return
            header = header.strip()
            if not header.startswith("@"):
                raise FastaError(f"bad FASTQ header: {header!r}")
            seq = handle.readline().strip()
            plus = handle.readline().strip()
            qual = handle.readline().strip()
            if not plus.startswith("+"):
                raise FastaError("missing '+' separator in FASTQ record")
            if len(qual) != len(seq):
                raise FastaError("quality length differs from sequence")
            yield header[1:].split()[0], encode(seq, allow_n=True)


#: Default reads per chunk of :func:`iter_reads_chunked` — long reads
#: are ~30x bigger than short-read pairs, so chunks are smaller than
#: :data:`DEFAULT_PAIR_CHUNK` while still amortizing parsing.
DEFAULT_READ_CHUNK = 512


def iter_reads_chunked(reads: PathLike,
                       chunk_size: OptionalChunk = DEFAULT_READ_CHUNK
                       ) -> Iterator[List[Tuple[np.ndarray, str]]]:
    """Stream a single-read FASTQ as chunks of ``(codes, name)``.

    The single-read counterpart of :func:`iter_pairs_chunked` (long-read
    and other unpaired workloads): chunks hold at most ``chunk_size``
    reads (``None`` selects :data:`DEFAULT_READ_CHUNK`), so memory stays
    O(chunk) on arbitrarily large inputs.  Validation is strict and
    loud, mirroring the paired path's tail check:

    * a record whose file ends before all four lines are present raises
      :class:`FastaError` naming the record and how many lines arrived
      (a truncated download is never silently dropped);
    * a ``+`` separator line that repeats a *different* name than the
      record's header raises (the file was spliced from mismatched
      records);
    * quality/sequence length disagreement raises.
    """
    if chunk_size is None:
        chunk_size = DEFAULT_READ_CHUNK
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    chunk: List[Tuple[np.ndarray, str]] = []
    ordinal = 0
    with open(reads) as handle:
        while True:
            lines = [handle.readline() for _ in range(4)]
            header = lines[0].strip()
            if not lines[0] or (not header
                                and not any(line.strip()
                                            for line in lines[1:])):
                break  # clean end of file (possibly trailing blanks)
            present = sum(1 for line in lines if line)
            if present < 4:
                raise FastaError(
                    f"truncated FASTQ record {ordinal + 1} in {reads}: "
                    f"file ended after {present} of its 4 lines; the "
                    "record is incomplete (truncated download?)")
            if not header.startswith("@") or len(header) < 2:
                raise FastaError(
                    f"bad FASTQ header at record {ordinal + 1} in "
                    f"{reads}: {header!r}")
            name = header[1:].split()[0]
            seq = lines[1].strip()
            plus = lines[2].strip()
            qual = lines[3].strip()
            if not plus.startswith("+"):
                raise FastaError(
                    f"FASTQ record {ordinal + 1} ({name!r}) in {reads}: "
                    f"expected a '+' separator line, got {plus!r}")
            if len(plus) > 1 and plus[1:] not in (name, header[1:]):
                raise FastaError(
                    f"FASTQ record {ordinal + 1} in {reads}: '+' "
                    f"separator names {plus[1:]!r} but the header names "
                    f"{name!r}; the file interleaves mismatched records")
            if len(qual) != len(seq):
                raise FastaError(
                    f"FASTQ record {ordinal + 1} ({name!r}) in {reads}: "
                    f"quality length {len(qual)} differs from sequence "
                    f"length {len(seq)}")
            chunk.append((encode(seq, allow_n=True), name))
            ordinal += 1
            if len(chunk) >= chunk_size:
                yield chunk
                chunk = []
    if chunk:
        yield chunk


def iter_reads(reads: PathLike,
               chunk_size: OptionalChunk = DEFAULT_READ_CHUNK
               ) -> Iterator[Tuple[np.ndarray, str]]:
    """Flat, lazy view of :func:`iter_reads_chunked` (one read at a time)."""
    for chunk in iter_reads_chunked(reads, chunk_size=chunk_size):
        yield from chunk


def _pair_name(name1: str, name2: str, ordinal: int,
               reads1: PathLike, reads2: PathLike) -> str:
    """Shared base name of an R1/R2 record pair, validated for agreement.

    Mate suffixes (``/1``, ``/2``) are stripped; anything left differing
    means the two files are out of sync (e.g. one was filtered or
    re-sorted independently), which would mis-pair every later read.
    """
    base1 = name1.rsplit("/", 1)[0]
    base2 = name2.rsplit("/", 1)[0]
    if base1 != base2:
        raise FastaError(
            f"paired FASTQ name mismatch at record {ordinal + 1}: "
            f"{name1!r} ({reads1}) vs {name2!r} ({reads2}); the files "
            "are not in the same read order")
    return base1


def iter_pairs_chunked(reads1: PathLike, reads2: PathLike,
                       chunk_size: OptionalChunk = DEFAULT_PAIR_CHUNK
                       ) -> Iterator[List[Tuple[np.ndarray, np.ndarray,
                                                str]]]:
    """Stream two paired FASTQ files as chunks of ``(codes1, codes2, name)``.

    Chunks hold at most ``chunk_size`` pairs (``None`` selects
    :data:`DEFAULT_PAIR_CHUNK`), so memory stays O(chunk) on
    arbitrarily large inputs.  Each R1/R2 record pair must agree on
    its base name, and the two files must hold the same number of
    records — a shorter file (truncated download, mismatched lanes)
    raises :class:`FastaError` naming the offending file rather than
    silently dropping the unpaired tail.
    """
    if chunk_size is None:
        chunk_size = DEFAULT_PAIR_CHUNK
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    chunk: List[Tuple[np.ndarray, np.ndarray, str]] = []
    ordinal = 0
    for record1, record2 in itertools.zip_longest(read_fastq(reads1),
                                                  read_fastq(reads2)):
        if record1 is None or record2 is None:
            shorter, longer = ((reads1, reads2) if record1 is None
                               else (reads2, reads1))
            raise FastaError(
                f"paired FASTQ files have unequal read counts: "
                f"{shorter} ended after {ordinal} records but {longer} "
                "has more; refusing to silently drop the unpaired tail")
        name1, codes1 = record1
        name2, codes2 = record2
        chunk.append((codes1, codes2,
                      _pair_name(name1, name2, ordinal, reads1, reads2)))
        ordinal += 1
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def iter_pairs(reads1: PathLike, reads2: PathLike,
               chunk_size: OptionalChunk = DEFAULT_PAIR_CHUNK
               ) -> Iterator[Tuple[np.ndarray, np.ndarray, str]]:
    """Flat, lazy view of :func:`iter_pairs_chunked` (one pair at a time)."""
    for chunk in iter_pairs_chunked(reads1, reads2, chunk_size=chunk_size):
        yield from chunk


def read_pairs(reads1: PathLike, reads2: PathLike
               ) -> List[Tuple[np.ndarray, np.ndarray, str]]:
    """Eagerly read two paired FASTQ files (same validation as streaming)."""
    return list(iter_pairs(reads1, reads2))


#: End-of-stream and failure sentinels for :func:`read_ahead`'s buffer.
_READ_AHEAD_DONE = object()


class _ReadAheadFailure:
    """Carries an exception from the prefetch thread to the consumer."""

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


def read_ahead(iterable: Iterable[ItemT],
               depth: int = 2) -> Iterator[ItemT]:
    """Iterate ``iterable`` through a background prefetch thread.

    Up to ``depth`` items are pulled ahead of the consumer and held in a
    bounded buffer, so producing the next item (e.g. parsing the next
    FASTQ chunk) overlaps with whatever the consumer does with the
    current one (e.g. dispatching it to mapping workers).  Order is
    preserved, exceptions raised by the source re-raise at the
    consumer's ``next()``, and closing the returned generator early
    stops the thread and joins it (bounded: a producer blocked inside
    the source's own I/O is abandoned as a daemon rather than allowed
    to wedge teardown).

    The thread only starts on the first ``next()``, so creating the
    iterator is free (and fork-safe: a worker pool forked before
    iteration begins never races the prefetch thread).
    """
    if depth < 1:
        raise ValueError("depth must be positive")
    buffer: queue.Queue = queue.Queue(maxsize=depth)
    stop = threading.Event()

    def push(item) -> bool:
        while not stop.is_set():
            try:
                buffer.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def produce() -> None:
        try:
            for item in iterable:
                if not push(item):
                    return
        except BaseException as exc:
            push(_ReadAheadFailure(exc))
            return
        push(_READ_AHEAD_DONE)

    thread = threading.Thread(target=produce, name="repro-read-ahead",
                              daemon=True)
    thread.start()
    try:
        while True:
            item = buffer.get()
            if item is _READ_AHEAD_DONE:
                return
            if isinstance(item, _ReadAheadFailure):
                raise item.exc
            yield item
    finally:
        stop.set()
        # Bounded join: the producer checks ``stop`` between items, but
        # may be parked inside a blocking read of the source (a stalled
        # pipe, a network mount).  A daemon thread stuck there cannot be
        # cancelled — abandon it rather than wedging teardown (it exits
        # on its own at the next item or at interpreter shutdown).
        thread.join(timeout=1.0)


def write_fastq(path: PathLike,
                records: Iterable[Tuple[str, np.ndarray]],
                quality_char: str = "I") -> int:
    """Write ``(name, codes)`` records as FASTQ; returns the record count."""
    count = 0
    with open(path, "w") as handle:
        for name, codes in records:
            seq = decode(codes)
            handle.write(f"@{name}\n{seq}\n+\n{quality_char * len(seq)}\n")
            count += 1
    return count
