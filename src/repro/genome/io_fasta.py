"""Minimal FASTA/FASTQ reading and writing.

The reproduction generates its own data, but a downstream user will want to
feed real files through the pipeline, and the examples round-trip datasets to
disk.  Only the features the pipeline needs are implemented: plain
(optionally multi-line) FASTA, and four-line FASTQ with dummy qualities.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Tuple, Union

import numpy as np

from .reference import ReferenceGenome
from .sequence import decode, encode

PathLike = Union[str, Path]


class FastaError(ValueError):
    """Raised for malformed FASTA/FASTQ input."""


def read_fasta(path: PathLike) -> "ReferenceGenome":
    """Read a FASTA file into a :class:`ReferenceGenome`.

    ``N`` bases are accepted and preserved; headers are truncated at the
    first whitespace, matching common mapper behaviour.
    """
    chromosomes: Dict[str, np.ndarray] = {}
    name = None
    chunks: List[str] = []
    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    chromosomes[name] = encode("".join(chunks), allow_n=True)
                name = line[1:].split()[0]
                if not name:
                    raise FastaError("empty FASTA header")
                if name in chromosomes:
                    raise FastaError(f"duplicate sequence name {name!r}")
                chunks = []
            else:
                if name is None:
                    raise FastaError("sequence data before first header")
                chunks.append(line)
    if name is not None:
        chromosomes[name] = encode("".join(chunks), allow_n=True)
    return ReferenceGenome(chromosomes)


def write_fasta(path: PathLike, genome: ReferenceGenome,
                line_width: int = 70) -> None:
    """Write a :class:`ReferenceGenome` to a FASTA file."""
    with open(path, "w") as handle:
        for name in genome.names:
            handle.write(f">{name}\n")
            seq = genome.sequence(name)
            for start in range(0, len(seq), line_width):
                handle.write(seq[start:start + line_width] + "\n")


def read_fastq(path: PathLike) -> Iterator[Tuple[str, np.ndarray]]:
    """Yield ``(name, codes)`` records from a FASTQ file."""
    with open(path) as handle:
        while True:
            header = handle.readline()
            if not header:
                return
            header = header.strip()
            if not header.startswith("@"):
                raise FastaError(f"bad FASTQ header: {header!r}")
            seq = handle.readline().strip()
            plus = handle.readline().strip()
            qual = handle.readline().strip()
            if not plus.startswith("+"):
                raise FastaError("missing '+' separator in FASTQ record")
            if len(qual) != len(seq):
                raise FastaError("quality length differs from sequence")
            yield header[1:].split()[0], encode(seq, allow_n=True)


def write_fastq(path: PathLike,
                records: Iterable[Tuple[str, np.ndarray]],
                quality_char: str = "I") -> int:
    """Write ``(name, codes)`` records as FASTQ; returns the record count."""
    count = 0
    with open(path, "w") as handle:
        for name, codes in records:
            seq = decode(codes)
            handle.write(f"@{name}\n{seq}\n+\n{quality_char * len(seq)}\n")
            count += 1
    return count
