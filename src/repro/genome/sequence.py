"""DNA sequence primitives: 2-bit encoding, complements, k-mer helpers.

Every higher layer of the reproduction (SeedMap, light alignment, the
baseline mapper, the read simulator) works on sequences encoded as
``numpy.uint8`` arrays holding one base code per element.  The codes follow
the conventional 2-bit alphabet used by the paper's hardware (GenPairX
encodes a read-pair with 2 bits per base, §7.4):

====  =====
base  code
====  =====
A     0
C     1
G     2
T     3
====  =====

Ambiguous bases (``N``) are carried as code 4 at the string boundary and are
never produced by the synthetic reference generator; the encoder can either
reject them or map them to an arbitrary concrete base, mirroring how real
mappers treat ``N`` in reads.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

import numpy as np

#: Number of distinct concrete bases in the DNA alphabet.
ALPHABET_SIZE = 4

#: Code used for an ambiguous base at the string boundary.
N_CODE = 4

_BASES = "ACGT"
_BASE_TO_CODE = {"A": 0, "C": 1, "G": 2, "T": 3, "N": N_CODE,
                 "a": 0, "c": 1, "g": 2, "t": 3, "n": N_CODE}

# Lookup table from ASCII byte to code (255 = invalid).
_ASCII_TO_CODE = np.full(256, 255, dtype=np.uint8)
for _ch, _code in _BASE_TO_CODE.items():
    _ASCII_TO_CODE[ord(_ch)] = _code

_CODE_TO_ASCII = np.frombuffer(b"ACGTN", dtype=np.uint8)

SequenceLike = Union[str, bytes, np.ndarray, Sequence[int]]


class SequenceError(ValueError):
    """Raised for malformed sequence input (invalid characters or codes)."""


def encode(seq: SequenceLike, allow_n: bool = False) -> np.ndarray:
    """Encode a DNA sequence into a ``uint8`` code array.

    Parameters
    ----------
    seq:
        A string/bytes of ``ACGTN`` (case-insensitive), or an existing code
        array which is validated and passed through.
    allow_n:
        When false (the default) an ``N`` raises :class:`SequenceError`;
        when true it is encoded as :data:`N_CODE`.

    Returns
    -------
    numpy.ndarray
        1-D ``uint8`` array of base codes.
    """
    if isinstance(seq, np.ndarray):
        codes = seq.astype(np.uint8, copy=False)
    elif isinstance(seq, (str, bytes)):
        raw = seq.encode("ascii") if isinstance(seq, str) else seq
        codes = _ASCII_TO_CODE[np.frombuffer(raw, dtype=np.uint8)]
        if codes.size and codes.max(initial=0) == 255:
            bad = chr(raw[int(np.argmax(codes == 255))])
            raise SequenceError(f"invalid DNA character: {bad!r}")
    else:
        codes = np.asarray(list(seq), dtype=np.uint8)
    limit = N_CODE if allow_n else ALPHABET_SIZE - 1
    if codes.size and codes.max(initial=0) > limit:
        raise SequenceError("sequence contains codes outside the alphabet")
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode a ``uint8`` code array back into an ``ACGTN`` string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max(initial=0) > N_CODE:
        raise SequenceError("code array contains values outside the alphabet")
    return _CODE_TO_ASCII[codes].tobytes().decode("ascii")


def complement(codes: np.ndarray) -> np.ndarray:
    """Return the base-wise complement (A<->T, C<->G); ``N`` maps to itself."""
    codes = np.asarray(codes, dtype=np.uint8)
    out = (3 - codes).astype(np.uint8)
    out[codes == N_CODE] = N_CODE
    return out


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Return the reverse complement of a code array."""
    return complement(codes)[::-1]


def reverse_complement_str(seq: str) -> str:
    """Return the reverse complement of a DNA string."""
    return decode(reverse_complement(encode(seq, allow_n=True)))


def random_sequence(rng: np.random.Generator, length: int) -> np.ndarray:
    """Draw a uniform random sequence of ``length`` concrete bases."""
    if length < 0:
        raise SequenceError("length must be non-negative")
    return rng.integers(0, ALPHABET_SIZE, size=length, dtype=np.uint8)


def pack_2bit(codes: np.ndarray) -> bytes:
    """Pack concrete base codes into 2 bits per base (4 bases per byte).

    This mirrors the 2-bit wire encoding the paper uses for host transfers
    (75 bytes per 150bp read-pair end, §7.4).  Ambiguous bases are not
    representable and raise :class:`SequenceError`.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max(initial=0) >= ALPHABET_SIZE:
        raise SequenceError("cannot 2-bit pack ambiguous bases")
    padded = np.zeros((codes.size + 3) // 4 * 4, dtype=np.uint8)
    padded[: codes.size] = codes
    quads = padded.reshape(-1, 4)
    packed = (quads[:, 0] | (quads[:, 1] << 2)
              | (quads[:, 2] << 4) | (quads[:, 3] << 6))
    return packed.astype(np.uint8).tobytes()


def unpack_2bit(data: bytes, length: int) -> np.ndarray:
    """Inverse of :func:`pack_2bit`; ``length`` is the base count."""
    raw = np.frombuffer(data, dtype=np.uint8)
    if raw.size * 4 < length:
        raise SequenceError("packed buffer shorter than requested length")
    quads = np.empty((raw.size, 4), dtype=np.uint8)
    quads[:, 0] = raw & 3
    quads[:, 1] = (raw >> 2) & 3
    quads[:, 2] = (raw >> 4) & 3
    quads[:, 3] = (raw >> 6) & 3
    return quads.reshape(-1)[:length]


def kmers(codes: np.ndarray, k: int) -> Iterator[np.ndarray]:
    """Yield every overlapping ``k``-mer window of ``codes`` (views)."""
    if k <= 0:
        raise SequenceError("k must be positive")
    for start in range(0, len(codes) - k + 1):
        yield codes[start:start + k]


def kmer_to_int(codes: np.ndarray) -> int:
    """Pack a concrete k-mer (k <= 31) into a single Python integer key."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max(initial=0) >= ALPHABET_SIZE:
        raise SequenceError("ambiguous base in k-mer")
    value = 0
    for code in codes.tolist():
        value = (value << 2) | code
    return value


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Count positions where two equal-length code arrays differ."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise SequenceError("hamming_distance requires equal-length inputs")
    return int(np.count_nonzero(a != b))
