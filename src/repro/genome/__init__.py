"""Genomics substrate: sequences, references, simulation, CIGAR, SAM.

This package provides everything below the mapping algorithms: sequence
encoding, reference genomes (synthetic generation included), germline
variant planting, Mason-like read simulation, CIGAR algebra, and SAM-like
alignment records.
"""

from .cigar import Cigar, CigarError
from .io_fasta import read_fasta, read_fastq, write_fasta, write_fastq
from .reference import (ReferenceError, ReferenceGenome, RepeatProfile,
                        generate_reference)
from .sam import (METHOD_DP, METHOD_EXACT, METHOD_LIGHT, AlignmentRecord,
                  write_sam)
from .sequence import (ALPHABET_SIZE, SequenceError, decode, encode,
                       hamming_distance, kmer_to_int, kmers, pack_2bit,
                       random_sequence, reverse_complement,
                       reverse_complement_str, unpack_2bit)
from .simulate import (ErrorModel, PairedEndProfile, ReadSimulator,
                       SimulatedPair, SimulatedRead, SimulationError)
from .variants import DiploidDonor, Haplotype, Variant, plant_variants

__all__ = [
    "ALPHABET_SIZE", "AlignmentRecord", "Cigar", "CigarError",
    "DiploidDonor", "ErrorModel", "Haplotype", "METHOD_DP", "METHOD_EXACT",
    "METHOD_LIGHT", "PairedEndProfile", "ReadSimulator", "ReferenceError",
    "ReferenceGenome", "RepeatProfile", "SequenceError", "SimulatedPair",
    "SimulatedRead", "SimulationError", "Variant", "decode", "encode",
    "generate_reference", "hamming_distance", "kmer_to_int", "kmers",
    "pack_2bit", "plant_variants", "random_sequence", "read_fasta",
    "read_fastq", "reverse_complement", "reverse_complement_str",
    "unpack_2bit", "write_fasta", "write_fastq", "write_sam",
]
