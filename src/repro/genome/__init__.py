"""Genomics substrate: sequences, references, simulation, CIGAR, SAM.

This package provides everything below the mapping algorithms: sequence
encoding, reference genomes (synthetic generation included), germline
variant planting, Mason-like read simulation, CIGAR algebra, and SAM-like
alignment records.
"""

from .cigar import Cigar, CigarError
from .io_fasta import (DEFAULT_PAIR_CHUNK, FastaError, iter_pairs,
                       iter_pairs_chunked, read_ahead, read_fasta,
                       read_fastq, read_pairs, write_fasta, write_fastq)
from .reference import (ReferenceError, ReferenceGenome, RepeatProfile,
                        generate_reference)
from .sam import (METHOD_DP, METHOD_EXACT, METHOD_LIGHT, AlignmentRecord,
                  SamWriter, sam_header_lines, sam_record_lines,
                  write_sam)
from .sequence import (ALPHABET_SIZE, SequenceError, decode, encode,
                       hamming_distance, kmer_to_int, kmers, pack_2bit,
                       random_sequence, reverse_complement,
                       reverse_complement_str, unpack_2bit)
from .simulate import (ErrorModel, PairedEndProfile, ReadSimulator,
                       SimulatedPair, SimulatedRead, SimulationError)
from .variants import DiploidDonor, Haplotype, Variant, plant_variants

__all__ = [
    "ALPHABET_SIZE", "AlignmentRecord", "Cigar", "CigarError",
    "DEFAULT_PAIR_CHUNK", "DiploidDonor", "ErrorModel", "FastaError",
    "Haplotype", "METHOD_DP", "METHOD_EXACT", "METHOD_LIGHT",
    "PairedEndProfile", "ReadSimulator", "ReferenceError",
    "ReferenceGenome", "RepeatProfile", "SamWriter", "SequenceError",
    "SimulatedPair", "SimulatedRead", "SimulationError", "Variant",
    "decode", "encode", "generate_reference", "hamming_distance",
    "iter_pairs", "iter_pairs_chunked", "kmer_to_int", "kmers",
    "pack_2bit", "plant_variants", "random_sequence", "read_ahead",
    "read_fasta", "read_fastq", "read_pairs", "reverse_complement",
    "reverse_complement_str", "sam_header_lines", "sam_record_lines",
    "unpack_2bit", "write_fasta", "write_fastq", "write_sam",
]
