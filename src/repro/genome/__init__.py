"""Genomics substrate: sequences, references, simulation, CIGAR, SAM.

This package provides everything below the mapping algorithms: sequence
encoding, reference genomes (synthetic generation included), germline
variant planting, Mason-like read simulation, CIGAR algebra, and SAM-like
alignment records.
"""

from .cigar import Cigar, CigarError
from .io_fasta import (DEFAULT_PAIR_CHUNK, DEFAULT_READ_CHUNK,
                       FastaError, iter_pairs, iter_pairs_chunked,
                       iter_reads, iter_reads_chunked, read_ahead,
                       read_fasta, read_fastq, read_pairs, write_fasta,
                       write_fastq)
from .jsonl import JsonlWriter, jsonl_header_lines, jsonl_record_lines
from .paf import PafWriter, paf_header_lines, paf_line, paf_record_lines
from .reference import (ReferenceError, ReferenceGenome, RepeatProfile,
                        generate_reference)
from .results import MappingResult, ResultLineWriter, result_records
from .sam import (METHOD_DP, METHOD_EXACT, METHOD_LIGHT, AlignmentRecord,
                  SamWriter, sam_header_lines, sam_record_lines,
                  write_sam)
from .sequence import (ALPHABET_SIZE, SequenceError, decode, encode,
                       hamming_distance, kmer_to_int, kmers, pack_2bit,
                       random_sequence, reverse_complement,
                       reverse_complement_str, unpack_2bit)
from .simulate import (ErrorModel, PairedEndProfile, ReadSimulator,
                       SimulatedPair, SimulatedRead, SimulationError)
from .variants import DiploidDonor, Haplotype, Variant, plant_variants

__all__ = [
    "ALPHABET_SIZE", "AlignmentRecord", "Cigar", "CigarError",
    "DEFAULT_PAIR_CHUNK", "DEFAULT_READ_CHUNK", "DiploidDonor",
    "ErrorModel", "FastaError", "Haplotype", "JsonlWriter", "METHOD_DP",
    "METHOD_EXACT", "METHOD_LIGHT", "MappingResult", "PafWriter",
    "PairedEndProfile", "ReadSimulator", "ReferenceError",
    "ReferenceGenome", "RepeatProfile", "ResultLineWriter", "SamWriter",
    "SequenceError", "SimulatedPair", "SimulatedRead", "SimulationError",
    "Variant", "decode", "encode", "generate_reference",
    "hamming_distance", "iter_pairs", "iter_pairs_chunked", "iter_reads",
    "iter_reads_chunked", "jsonl_header_lines", "jsonl_record_lines",
    "kmer_to_int", "kmers", "pack_2bit", "paf_header_lines", "paf_line",
    "paf_record_lines", "plant_variants", "random_sequence", "read_ahead",
    "read_fasta", "read_fastq", "read_pairs", "result_records",
    "reverse_complement", "reverse_complement_str", "sam_header_lines",
    "sam_record_lines", "unpack_2bit", "write_fasta", "write_fastq",
    "write_sam",
]
