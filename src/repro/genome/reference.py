"""Reference genome model and synthetic genome generation.

The paper evaluates against GRCh38 (3.1 Gbp).  A pure-Python functional model
cannot process a human genome, so this module provides (a) a reference
container with the operations the pipeline needs (windowed fetch, global
linear coordinates used by paired-adjacency filtering) and (b) a synthetic
generator that reproduces the *statistics* GenPair is sensitive to —
principally repeated sequence, which controls how many reference locations a
seed hits (Observation 2: ~9.6 locations per 50bp seed on GRCh38).

The generator plants two kinds of repeats:

* **interspersed repeats** — a small library of repeat elements (Alu-like)
  copied with light divergence to many random positions;
* **segmental duplications** — long windows copied elsewhere in the genome.

Both drive the multi-hit seed distribution and the index-filter-threshold
behaviour studied in §7.8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .sequence import decode, encode, random_sequence


class ReferenceError(ValueError):
    """Raised for out-of-range fetches or malformed genome input."""


@dataclass
class ReferenceGenome:
    """An in-memory reference genome: named chromosomes of base codes.

    Coordinates are 0-based, end-exclusive.  ``linear_offset`` assigns every
    chromosome a disjoint region of one global coordinate space so that
    locations from different chromosomes can be compared with plain integer
    arithmetic — this is exactly the flattened location representation the
    SeedMap Location Table stores (§4.2).
    """

    chromosomes: "Dict[str, np.ndarray]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._offsets: Dict[str, int] = {}
        self._names: List[str] = []
        cursor = 0
        for name, codes in self.chromosomes.items():
            self._offsets[name] = cursor
            self._names.append(name)
            cursor += len(codes)
        self._total = cursor

    @classmethod
    def from_linear_codes(cls, names: Sequence[str],
                          lengths: Sequence[int],
                          codes: np.ndarray) -> "ReferenceGenome":
        """Reassemble a genome from its flattened linear code array.

        ``codes`` is the concatenation of every chromosome's base codes in
        declaration order — the same global coordinate space
        :meth:`to_linear` maps into.  Each chromosome becomes a *view*
        into ``codes`` (zero-copy), which is what lets the persistent
        index (:mod:`repro.index`) serve a whole genome out of one
        ``np.memmap`` that forked workers share physically.
        """
        codes = np.asarray(codes)
        if codes.ndim != 1:
            raise ReferenceError("linear codes must be one-dimensional")
        if len(names) != len(set(names)):
            raise ReferenceError("duplicate chromosome names")
        if len(names) != len(lengths):
            raise ReferenceError("names and lengths differ in count")
        chromosomes: Dict[str, np.ndarray] = {}
        cursor = 0
        for name, length in zip(names, lengths):
            if length < 0:
                raise ReferenceError("negative chromosome length")
            chromosomes[name] = codes[cursor:cursor + length]
            cursor += length
        if cursor != len(codes):
            raise ReferenceError(
                f"linear codes hold {len(codes)} bases but chromosome "
                f"lengths sum to {cursor}")
        return cls(chromosomes)

    def linear_codes(self) -> np.ndarray:
        """Every chromosome's codes concatenated in declaration order."""
        if not self._names:
            return np.zeros(0, dtype=np.uint8)
        return np.concatenate([self.chromosomes[name]
                               for name in self._names])

    # -- introspection -----------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        """Chromosome names in declaration order."""
        return tuple(self._names)

    @property
    def total_length(self) -> int:
        """Total bases across all chromosomes."""
        return self._total

    def length(self, name: str) -> int:
        """Length of one chromosome."""
        return len(self._chromosome(name))

    def _chromosome(self, name: str) -> np.ndarray:
        try:
            return self.chromosomes[name]
        except KeyError:
            raise ReferenceError(f"unknown chromosome {name!r}") from None

    # -- coordinates -------------------------------------------------------

    def linear_offset(self, name: str) -> int:
        """Global offset of position 0 of ``name``."""
        self._chromosome(name)
        return self._offsets[name]

    def linear_starts(self) -> np.ndarray:
        """Sorted global start offset of every chromosome.

        ``np.searchsorted(starts, pos, side="right") - 1`` maps a linear
        coordinate to its chromosome index — the vectorized counterpart
        of :meth:`from_linear`, used by paired-adjacency filtering to
        reject joint candidates spanning a chromosome boundary.
        """
        return np.array([self._offsets[name] for name in self._names],
                        dtype=np.int64)

    def to_linear(self, name: str, position: int) -> int:
        """Convert ``(chromosome, position)`` to a global coordinate."""
        if not 0 <= position <= self.length(name):
            raise ReferenceError(
                f"position {position} outside {name!r} "
                f"(length {self.length(name)})")
        return self._offsets[name] + position

    def from_linear(self, linear: int) -> Tuple[str, int]:
        """Convert a global coordinate back to ``(chromosome, position)``."""
        if not 0 <= linear < self._total:
            raise ReferenceError(f"linear coordinate {linear} out of range")
        for name in reversed(self._names):
            offset = self._offsets[name]
            if linear >= offset:
                return name, linear - offset
        raise ReferenceError("empty genome")  # pragma: no cover

    # -- sequence access ---------------------------------------------------

    def fetch(self, name: str, start: int, end: int) -> np.ndarray:
        """Fetch ``[start, end)`` of a chromosome as a code array (a view)."""
        codes = self._chromosome(name)
        if not 0 <= start <= end <= len(codes):
            raise ReferenceError(
                f"window [{start}, {end}) outside {name!r} "
                f"(length {len(codes)})")
        return codes[start:end]

    def fetch_linear(self, start: int, end: int) -> np.ndarray:
        """Fetch a window in global coordinates (must be one chromosome)."""
        name, pos = self.from_linear(start)
        if end - start > self.length(name) - pos:
            raise ReferenceError("linear window crosses a chromosome")
        return self.fetch(name, pos, pos + (end - start))

    def iter_windows(self, size: int, step: int
                     ) -> Iterator[Tuple[str, int, np.ndarray]]:
        """Yield ``(name, start, window)`` tiles across all chromosomes."""
        for name in self._names:
            codes = self.chromosomes[name]
            for start in range(0, len(codes) - size + 1, step):
                yield name, start, codes[start:start + size]

    def sequence(self, name: str) -> str:
        """Decode one whole chromosome to a string (tests/examples only)."""
        return decode(self._chromosome(name))


# ---------------------------------------------------------------------------
# synthetic generation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RepeatProfile:
    """Controls how much repeated sequence the generator plants.

    Parameters are chosen so the default small genomes reproduce the paper's
    multi-hit seed statistics at reduced scale (Observation 2).
    """

    #: Number of distinct interspersed repeat elements in the library.
    library_size: int = 4
    #: Length of each interspersed repeat element, in bases.
    element_length: int = 300
    #: Fraction of the genome covered by interspersed repeat copies.
    interspersed_fraction: float = 0.25
    #: Per-base divergence applied to each planted repeat copy.
    copy_divergence: float = 0.02
    #: Number of long segmental duplications to plant.
    segmental_duplications: int = 2
    #: Length of each segmental duplication, in bases.
    duplication_length: int = 2000

    @classmethod
    def human_like(cls) -> "RepeatProfile":
        """Repeat density calibrated to Observation 2 (~9.6 locations/seed).

        Recent, low-divergence repeats dominate exact 50bp multiplicity in
        GRCh38; this profile plants near-identical copies so that the mean
        number of reference locations per queried seed lands near the
        paper's 9.3-9.6 range (validated in the benchmark suite).
        """
        return cls(library_size=6, element_length=300,
                   interspersed_fraction=0.42, copy_divergence=0.002,
                   segmental_duplications=4, duplication_length=3000)


def generate_reference(
    rng: np.random.Generator,
    chromosome_lengths: Sequence[int] = (400_000, 300_000),
    repeats: Optional[RepeatProfile] = RepeatProfile(),
    name_prefix: str = "chr",
) -> ReferenceGenome:
    """Generate a synthetic reference genome with repeat structure.

    Parameters
    ----------
    rng:
        Source of randomness; pass a seeded generator for reproducibility.
    chromosome_lengths:
        Length of each chromosome to generate.
    repeats:
        Repeat structure profile, or ``None`` for a purely random genome
        (every seed then hits ~1 location — useful in unit tests).
    name_prefix:
        Chromosomes are named ``f"{name_prefix}{i+1}"``.
    """
    if any(length <= 0 for length in chromosome_lengths):
        raise ReferenceError("chromosome lengths must be positive")
    chromosomes: Dict[str, np.ndarray] = {}
    for index, length in enumerate(chromosome_lengths):
        chromosomes[f"{name_prefix}{index + 1}"] = random_sequence(rng, length)
    if repeats is not None:
        _plant_interspersed_repeats(rng, chromosomes, repeats)
        _plant_segmental_duplications(rng, chromosomes, repeats)
    return ReferenceGenome(chromosomes)


def _mutate_copy(rng: np.random.Generator, codes: np.ndarray,
                 divergence: float) -> np.ndarray:
    """Return a copy of ``codes`` with i.i.d. substitutions at ``divergence``."""
    copy = codes.copy()
    if divergence <= 0:
        return copy
    hits = rng.random(copy.size) < divergence
    if hits.any():
        shifts = rng.integers(1, 4, size=int(hits.sum()), dtype=np.uint8)
        copy[hits] = (copy[hits] + shifts) % 4
    return copy


def _plant_interspersed_repeats(rng: np.random.Generator,
                                chromosomes: Dict[str, np.ndarray],
                                profile: RepeatProfile) -> None:
    library = [random_sequence(rng, profile.element_length)
               for _ in range(profile.library_size)]
    names = list(chromosomes)
    total = sum(len(chromosomes[name]) for name in names)
    target = int(total * profile.interspersed_fraction)
    planted = 0
    while planted < target:
        element = library[int(rng.integers(0, len(library)))]
        name = names[int(rng.integers(0, len(names)))]
        codes = chromosomes[name]
        if len(codes) <= len(element):
            continue
        start = int(rng.integers(0, len(codes) - len(element)))
        codes[start:start + len(element)] = _mutate_copy(
            rng, element, profile.copy_divergence)
        planted += len(element)


def _plant_segmental_duplications(rng: np.random.Generator,
                                  chromosomes: Dict[str, np.ndarray],
                                  profile: RepeatProfile) -> None:
    names = list(chromosomes)
    for _ in range(profile.segmental_duplications):
        src_name = names[int(rng.integers(0, len(names)))]
        dst_name = names[int(rng.integers(0, len(names)))]
        src = chromosomes[src_name]
        dst = chromosomes[dst_name]
        length = min(profile.duplication_length, len(src) // 2, len(dst) // 2)
        if length <= 0:
            continue
        src_start = int(rng.integers(0, len(src) - length))
        dst_start = int(rng.integers(0, len(dst) - length))
        segment = src[src_start:src_start + length].copy()
        dst[dst_start:dst_start + length] = _mutate_copy(
            rng, segment, profile.copy_divergence / 2)
