"""CIGAR string algebra (Compact Idiosyncratic Gapped Alignment Report).

CIGAR strings are the compressed alignment encoding used in SAM/BAM files and
produced by both the light-alignment hardware path and the DP fallback
(§2, §4.6).  This module provides a small, explicit value type with the
operations every consumer in the reproduction needs: parsing, rendering,
length accounting, normalization, and scoring under an affine-gap scheme.

Supported operations:

====  ==========================  consumes read  consumes reference
op    meaning
====  ==========================  =============  ==================
``M``  match or mismatch          yes            yes
``=``  sequence match             yes            yes
``X``  sequence mismatch          yes            yes
``I``  insertion (in the read)    yes            no
``D``  deletion (from the read)   no             yes
``S``  soft clip                  yes            no
====  ==========================  =============  ==================
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Tuple

_VALID_OPS = frozenset("M=XIDS")
_READ_OPS = frozenset("M=XIS")
_REF_OPS = frozenset("M=XD")
_CIGAR_RE = re.compile(r"(\d+)([M=XIDS])")


class CigarError(ValueError):
    """Raised for malformed CIGAR input."""


@dataclass(frozen=True)
class Cigar:
    """An immutable CIGAR: a tuple of ``(length, op)`` pairs."""

    ops: Tuple[Tuple[int, str], ...]

    def __post_init__(self) -> None:
        for length, op in self.ops:
            if op not in _VALID_OPS:
                raise CigarError(f"invalid CIGAR op {op!r}")
            if length <= 0:
                raise CigarError(f"non-positive CIGAR length {length}")

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, str]]) -> "Cigar":
        """Build a CIGAR from ``(length, op)`` pairs, merging adjacent ops."""
        merged: List[Tuple[int, str]] = []
        for length, op in pairs:
            if length == 0:
                continue
            if merged and merged[-1][1] == op:
                merged[-1] = (merged[-1][0] + length, op)
            else:
                merged.append((length, op))
        return cls(tuple(merged))

    @classmethod
    def parse(cls, text: str) -> "Cigar":
        """Parse a SAM-style CIGAR string such as ``"100M2I48M"``."""
        if text in ("", "*"):
            return cls(())
        pos = 0
        pairs = []
        for match in _CIGAR_RE.finditer(text):
            if match.start() != pos:
                raise CigarError(f"malformed CIGAR: {text!r}")
            pairs.append((int(match.group(1)), match.group(2)))
            pos = match.end()
        if pos != len(text):
            raise CigarError(f"malformed CIGAR: {text!r}")
        return cls(tuple(pairs))

    @classmethod
    def perfect(cls, length: int) -> "Cigar":
        """A CIGAR describing ``length`` exact matches."""
        return cls(((length, "="),)) if length else cls(())

    # -- rendering ---------------------------------------------------------

    def __str__(self) -> str:
        if not self.ops:
            return "*"
        return "".join(f"{length}{op}" for length, op in self.ops)

    # -- accounting --------------------------------------------------------

    @property
    def read_length(self) -> int:
        """Number of read bases consumed."""
        return sum(length for length, op in self.ops if op in _READ_OPS)

    @property
    def reference_length(self) -> int:
        """Number of reference bases consumed."""
        return sum(length for length, op in self.ops if op in _REF_OPS)

    @property
    def aligned_read_length(self) -> int:
        """Read bases consumed excluding soft clips."""
        return sum(length for length, op in self.ops
                   if op in _READ_OPS and op != "S")

    def count(self, op: str) -> int:
        """Total length across runs of one operation."""
        return sum(length for length, o in self.ops if o == op)

    @property
    def edit_runs(self) -> Tuple[Tuple[int, str], ...]:
        """The non-match runs (X/I/D) in order — the 'edits' of §3.4."""
        return tuple((length, op) for length, op in self.ops
                     if op in ("X", "I", "D"))

    # -- transforms --------------------------------------------------------

    def collapse_matches(self) -> "Cigar":
        """Render ``=``/``X`` as plain ``M`` (classic SAM style)."""
        return Cigar.from_pairs(
            (length, "M" if op in "=X" else op) for length, op in self.ops)

    def concatenated(self, other: "Cigar") -> "Cigar":
        """Concatenate two CIGARs, merging the boundary run if needed."""
        return Cigar.from_pairs(list(self.ops) + list(other.ops))

    def classify_edits(self, merge_mismatches: bool = True) -> str:
        """Summarize the edit structure for the §3.4 analysis.

        Returns one of ``"exact"``, ``"mismatch_only"``, ``"single_indel"``
        (one consecutive run of I or D), or ``"complex"``.  Reads whose edits
        are solely mismatches or one consecutive indel run are exactly the
        69.9% population Light Alignment handles (Observation 3).
        """
        runs = self.edit_runs
        if not runs:
            return "exact"
        ops = {op for _, op in runs}
        if ops == {"X"}:
            return "mismatch_only"
        if ops in ({"I"}, {"D"}) and len(runs) == 1:
            return "single_indel"
        return "complex"
