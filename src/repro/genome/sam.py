"""SAM-like alignment records and a minimal writer.

Both the GenPair pipeline and the baseline mapper emit
:class:`AlignmentRecord` objects; the variant-calling substrate consumes
them, and the examples can serialize them to a SAM-flavoured text file.
Only the subset of SAM that the reproduction needs is modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

import numpy as np

from .cigar import Cigar
from .reference import ReferenceGenome
from .results import result_records
from .sequence import decode

PathLike = Union[str, Path]

#: Marker for how an alignment was produced (tag ``XM`` in SAM output) —
#: lets the experiments split the population into GenPair-handled versus
#: DP-fallback reads (Fig 10).
METHOD_LIGHT = "light"
METHOD_DP = "dp"
METHOD_EXACT = "exact"


@dataclass
class AlignmentRecord:
    """One read-to-reference alignment.

    ``position`` is the 0-based leftmost reference coordinate of the
    alignment.  ``mapped`` is false for unmapped reads (all placement fields
    are then meaningless).
    """

    query_name: str
    chromosome: str = "*"
    position: int = 0
    strand: str = "+"
    mapq: int = 0
    cigar: Cigar = field(default_factory=lambda: Cigar(()))
    score: int = 0
    read_codes: Optional[np.ndarray] = None
    mate: int = 0
    mapped: bool = True
    method: str = METHOD_DP
    #: Mate placement (proper pairs only): chromosome, 0-based position,
    #: strand, and the signed template length (SAM TLEN semantics).
    mate_chromosome: Optional[str] = None
    mate_position: Optional[int] = None
    mate_strand: Optional[str] = None
    template_length: int = 0
    proper_pair: bool = False

    @property
    def reference_end(self) -> int:
        """0-based end (exclusive) of the alignment on the reference."""
        return self.position + self.cigar.reference_length

    def overlaps(self, chromosome: str, start: int, end: int) -> bool:
        """Does this alignment overlap ``[start, end)`` on ``chromosome``?"""
        return (self.mapped and self.chromosome == chromosome
                and self.position < end and self.reference_end > start)

    def set_mate(self, other: "AlignmentRecord") -> None:
        """Record the mate's placement and the signed template length.

        Call once per record of a mapped pair; marks the pair proper when
        both mates are mapped to the same chromosome.
        """
        if not other.mapped:
            return
        self.mate_chromosome = other.chromosome
        self.mate_position = other.position
        self.mate_strand = other.strand
        if self.mapped and self.chromosome == other.chromosome:
            self.proper_pair = True
            left = min(self.position, other.position)
            right = max(self.reference_end, other.reference_end)
            span = right - left
            self.template_length = span if self.position <= \
                other.position else -span

    def to_sam_line(self) -> str:
        """Render as a SAM-flavoured tab-separated line."""
        flag = 0
        if not self.mapped:
            flag |= 4
        if self.strand == "-":
            flag |= 16
        if self.mate == 1:
            flag |= 64 | 1
        elif self.mate == 2:
            flag |= 128 | 1
        if self.proper_pair:
            flag |= 2
        if self.mate_strand == "-":
            flag |= 32
        if self.mate_chromosome is None and self.mate:
            flag |= 8  # mate unmapped
        if self.mate_chromosome is None:
            rnext, pnext = "*", "0"
        elif self.mate_chromosome == self.chromosome:
            rnext, pnext = "=", str(self.mate_position + 1)
        else:
            rnext = self.mate_chromosome
            pnext = str(self.mate_position + 1)
        seq = decode(self.read_codes) if self.read_codes is not None else "*"
        fields = [
            self.query_name, str(flag),
            self.chromosome if self.mapped else "*",
            str(self.position + 1 if self.mapped else 0),
            str(self.mapq),
            str(self.cigar) if self.mapped else "*",
            rnext, pnext, str(self.template_length), seq, "*",
            f"AS:i:{self.score}", f"XM:Z:{self.method}",
        ]
        return "\t".join(fields)


class SamWriter:
    """Incremental SAM writer: header up front, records as they arrive.

    The streaming ``map`` path hands each chunk's results straight here,
    so writing a SAM file needs O(1) memory regardless of input size —
    with a multi-worker stream, :meth:`drain` writes each chunk the
    moment the ordered merge releases it, while later chunks are still
    being mapped.  Use as a context manager::

        with SamWriter("out.sam", reference=reference) as writer:
            writer.drain(pipeline.map_stream(pairs, workers=4))

    :attr:`count` tracks records written so far.
    """

    def __init__(self, path: PathLike,
                 reference: Optional[ReferenceGenome] = None) -> None:
        self.path = str(path)
        self.count = 0
        self._handle = open(path, "w")
        try:
            for line in sam_header_lines(reference):
                self._handle.write(line + "\n")
        except Exception:
            self._handle.close()
            raise

    def write(self, record: AlignmentRecord) -> None:
        """Append one alignment record."""
        self._handle.write(record.to_sam_line() + "\n")
        self.count += 1

    def write_result(self, result) -> None:
        """Append every record of a mapping result — both mates of a
        pipeline ``PairResult``/paired ``MappingResult``, the single
        record of a long-read result, or a bare record."""
        for record in result_records(result):
            self.write(record)

    # Historical name from when the only results were read pairs.
    write_pair = write_result

    def write_all(self, records: Iterable[AlignmentRecord]) -> int:
        """Append many records; returns the number written by this call."""
        before = self.count
        for record in records:
            self.write(record)
        return self.count - before

    def drain(self, results: Iterable) -> int:
        """Write a stream of mapping results as they arrive.

        Pulls ``results`` one element at a time (keeping a lazy
        ``map_stream`` generator lazy) and writes each result's records
        immediately, so disk output overlaps with mapping instead of
        waiting for the stream to finish.  Flushes once the stream
        ends and returns the number of results drained by this call.
        """
        drained = 0
        for result in results:
            self.write_result(result)
            drained += 1
        self.flush()
        return drained

    def flush(self) -> None:
        """Push buffered records to the OS (e.g. before a checkpoint)."""
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "SamWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_sam(path: PathLike, records: Iterable[AlignmentRecord],
              reference: Optional[ReferenceGenome] = None) -> int:
    """Write records to a SAM-flavoured file; returns the record count."""
    with SamWriter(path, reference=reference) as writer:
        writer.write_all(records)
        return writer.count


def sam_header_lines(
        reference: Optional[ReferenceGenome] = None) -> list:
    """The header lines :class:`SamWriter` writes, without the newlines.

    One definition of the header keeps every output path — the
    incremental writer, the serving daemon's JSON responses, and a
    client reassembling a file from them — byte-identical.
    """
    lines = ["@HD\tVN:1.6\tSO:unknown"]
    if reference is not None:
        for name in reference.names:
            lines.append(f"@SQ\tSN:{name}\tLN:{reference.length(name)}")
    return lines


def sam_record_lines(results: Iterable) -> Iterable[str]:
    """Render a stream of mapping results as SAM record lines.

    Lazy: pulls one result at a time, emitting a line per record (both
    mates of a pair, the single record of a long read) — exactly the
    body :meth:`SamWriter.drain` would write.  Accepts pipeline
    ``PairResult``s, engine-agnostic ``MappingResult``s, and bare
    records alike.
    """
    for result in results:
        for record in result_records(result):
            yield record.to_sam_line()
