"""JSONL (newline-delimited JSON) alignment output.

One JSON object per alignment record, one line per object — the format
downstream data pipelines (and the serving daemon's structured
consumers) ingest without a SAM parser.  Rendering is deterministic:
fixed key order, compact separators, no floats — so the same results
always serialize to the same bytes, and the daemon's wire lines are
byte-identical to :class:`JsonlWriter` file output (both call
:func:`jsonl_record_lines`).

Unlike PAF, unmapped records ARE emitted (``"mapped": false`` with
placement fields nulled), so a JSONL file accounts for every read of a
run; result-level provenance (``engine``, ``stage``) rides along on
each record line.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, List

from .results import ResultLineWriter, result_records


def jsonl_header_lines(reference=None) -> List[str]:
    """JSONL has no header; one definition keeps the format table uniform."""
    return []


def record_payload(record, result=None) -> dict:
    """One record as the plain-JSON-types payload of its JSONL line."""
    mapped = bool(record.mapped)
    return {
        "name": record.query_name,
        "mapped": mapped,
        "chrom": record.chromosome if mapped else None,
        "pos": int(record.position) if mapped else None,
        "strand": record.strand if mapped else None,
        "mapq": int(record.mapq),
        "cigar": str(record.cigar) if mapped else None,
        "score": int(record.score),
        "method": record.method,
        "mate": int(record.mate),
        "proper_pair": bool(record.proper_pair),
        "engine": getattr(result, "engine", "") or None,
        "stage": getattr(result, "stage", "") or None,
    }


def jsonl_record_lines(results: Iterable, reference=None) -> Iterator[str]:
    """Render a result stream as JSONL lines (the daemon's wire form).

    Lazy: one line per record, mapped or not, in stream order.
    """
    for result in results:
        for record in result_records(result):
            yield json.dumps(record_payload(record, result),
                             separators=(",", ":"))


class JsonlWriter(ResultLineWriter):
    """Incremental JSONL file writer over :func:`jsonl_record_lines`."""

    def result_lines(self, result) -> Iterator[str]:
        return jsonl_record_lines((result,), self.reference)
