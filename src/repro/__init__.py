"""GenPairX reproduction: paired-end read mapping, co-designed HW model.

Public API layout:

* :mod:`repro.api` — **the public entry point**: the unified
  :class:`~repro.api.MappingConfig`, the :class:`~repro.api.Mapper`
  facade (owns the memory-mapped index and a reused persistent worker
  pool), the stage registries, and the ``repro serve`` daemon plus its
  :class:`~repro.api.Client`;
* :mod:`repro.genome` — sequences, references, simulation, CIGAR, SAM;
* :mod:`repro.hashing` — xxHash32 (scalar and vectorized);
* :mod:`repro.align` — affine-gap DP aligners and chaining;
* :mod:`repro.mapper` — the baseline seed-chain-align mapper ("MM2");
* :mod:`repro.core` — the GenPair algorithm (SeedMap, partitioned
  seeding, paired-adjacency filtering, light alignment, pipeline); the
  pipeline ships two bit-identical execution engines — the scalar
  ``map_pair`` reference path and the batched ``map_batch`` engine,
  which hashes a whole chunk's seeds in one vectorized call, resolves
  them against the array-backed SeedMap in one probe, and optionally
  shards chunks across forked workers (``workers=N``);
* :mod:`repro.index` — persistent memory-mapped SeedMap indexes: one
  ``repro index build`` serializes the SeedMap + encoded reference to a
  versioned binary file that ``repro map --index`` memory-maps back in
  milliseconds, with forked workers sharing one physical copy;
* :mod:`repro.hw` — the GenPairX hardware model (NMSL, sizing, costs);
* :mod:`repro.filters` — pre-alignment filter baselines (SHD,
  GateKeeper, FastHASH adjacency, exact match);
* :mod:`repro.variants` — pileup caller, truth comparison, mapeval;
* :mod:`repro.analysis` — the paper's §3 profiling observations.
"""

from . import align, analysis, api, core, filters, genome, hashing, \
    hw, index, mapper, util, variants

__version__ = "1.2.0"

__all__ = ["align", "analysis", "api", "core", "filters", "genome",
           "hashing", "hw", "index", "mapper", "util", "variants",
           "__version__"]
