"""Performance/cost models of GenPairX's compute modules (§5, §7.2).

Each module's per-instance throughput is derived from its cycle behaviour
at the 2 GHz clock, parameterized by the workload statistics the pipeline
measures (filter iterations per pair, light alignments per pair):

* **Partitioned Seeding** — fully pipelined xxHash units, one per seed;
  data-independent initiation interval (333 MPair/s per instance);
* **Paired-Adjacency Filtering** — one comparator step per cycle, so
  cycles/pair = mean filter iterations (paper: 24.1 -> 83 MPair/s);
* **Light Alignment** — one alignment takes ``read_length + 6`` cycles
  (masks in 1 cycle, bidirectional run scan over the read, compare);
  cycles/pair = that times the mean alignments per pair (paper: 11.6 ->
  1.1 MPair/s per instance, 174 instances).

Per-instance area/power constants are the paper's 28nm synthesis results
scaled to 7nm (Table 4 divided by the §7.2 instance counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .scaling import BlockCost

#: GenPairX clock frequency, GHz (§6: "All components operate at 2.0 GHz").
CLOCK_GHZ = 2.0

#: Per-instance block costs at the 7nm comparison node (Table 4 /
#: instance counts of Table 3).
SEEDING_INSTANCE_COST = BlockCost(area_mm2=0.016, power_mw=82.4)
FILTERING_INSTANCE_COST = BlockCost(area_mm2=0.027 / 3, power_mw=15.6 / 3)
LIGHT_INSTANCE_COST = BlockCost(area_mm2=0.53 / 174, power_mw=453.6 / 174)

#: Pipelined seeding initiation interval, cycles per read-pair
#: (six parallel hash units; 2 GHz / 6 cycles = 333 MPair/s).
SEEDING_CYCLES_PER_PAIR = 6.0

#: Seeding pipeline depth (latency), cycles (Table 3).
SEEDING_LATENCY_CYCLES = 10.0

#: Extra cycles per light alignment beyond the read length (mask compute
#: plus final segment comparison; 150bp -> 156 cycles, §7.2).
LIGHT_OVERHEAD_CYCLES = 6.0


@dataclass(frozen=True)
class ModuleSizing:
    """One row of Table 3: module throughput, latency and instance count."""

    name: str
    throughput_mpairs: float  # per instance
    latency_cycles: float
    instances: int
    instance_cost: BlockCost

    @property
    def total_cost(self) -> BlockCost:
        return self.instance_cost.times(self.instances)

    @property
    def aggregate_throughput_mpairs(self) -> float:
        return self.throughput_mpairs * self.instances


def _instances_for(target_mpairs: float, per_instance: float) -> int:
    if per_instance <= 0:
        raise ValueError("per-instance throughput must be positive")
    return max(1, math.ceil(target_mpairs / per_instance))


def seeding_module(target_mpairs: float,
                   clock_ghz: float = CLOCK_GHZ) -> ModuleSizing:
    """Size the Partitioned Seeding module for a target pair rate."""
    per_instance = clock_ghz * 1e3 / SEEDING_CYCLES_PER_PAIR  # MPair/s
    return ModuleSizing(
        name="Partitioned Seeding",
        throughput_mpairs=per_instance,
        latency_cycles=SEEDING_LATENCY_CYCLES,
        instances=_instances_for(target_mpairs, per_instance),
        instance_cost=SEEDING_INSTANCE_COST)


def filtering_module(target_mpairs: float,
                     mean_iterations_per_pair: float = 24.1,
                     clock_ghz: float = CLOCK_GHZ) -> ModuleSizing:
    """Size Paired-Adjacency Filtering from measured iterations/pair."""
    if mean_iterations_per_pair <= 0:
        mean_iterations_per_pair = 1.0
    per_instance = clock_ghz * 1e3 / mean_iterations_per_pair
    return ModuleSizing(
        name="Paired-Adjacency Filtering",
        throughput_mpairs=per_instance,
        latency_cycles=mean_iterations_per_pair,
        instances=_instances_for(target_mpairs, per_instance),
        instance_cost=FILTERING_INSTANCE_COST)


def light_alignment_module(target_mpairs: float,
                           read_length: int = 150,
                           mean_alignments_per_pair: float = 11.6,
                           clock_ghz: float = CLOCK_GHZ) -> ModuleSizing:
    """Size the Light Alignment module from measured alignments/pair."""
    cycles_per_alignment = read_length + LIGHT_OVERHEAD_CYCLES
    if mean_alignments_per_pair <= 0:
        mean_alignments_per_pair = 1.0
    cycles_per_pair = cycles_per_alignment * mean_alignments_per_pair
    per_instance = clock_ghz * 1e3 / cycles_per_pair
    return ModuleSizing(
        name="Light Alignment",
        throughput_mpairs=per_instance,
        latency_cycles=cycles_per_alignment,
        instances=_instances_for(target_mpairs, per_instance),
        instance_cost=LIGHT_INSTANCE_COST)
