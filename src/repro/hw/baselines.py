"""Published baseline systems for the end-to-end comparison (§6, §7.4).

The paper compares GenPairX+GenDP against five systems whose area, power
and throughput come from prior publications or the paper's own
measurements.  Table 5 gives GenCache and GenDP outright; the CPU and GPU
rows are reconstructed from the paper's published *ratios* against
GenPairX+GenDP (57,810 Mbp/s over 381.1 mm^2 / 209.0 W) together with the
platform facts of Table 2.  Each derivation is documented inline; the
reconstruction is self-consistent — e.g. the CPU power recovered from the
per-Watt ratio (≈270 W package+DRAM under RAPL) is identical whether
derived through the MM2 row or the GenPair+MM2 row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class SystemPerf:
    """End-to-end system costs: area (mm^2), power (W), Mbp/s."""

    name: str
    area_mm2: float
    power_w: float
    throughput_mbps: float

    @property
    def per_area(self) -> float:
        """Mbp/s per mm^2 (Fig 11 left)."""
        return self.throughput_mbps / self.area_mm2

    @property
    def per_watt(self) -> float:
        """Mbp/s per Watt (Fig 11 right)."""
        return self.throughput_mbps / self.power_w


#: GenCache (Nag et al., MICRO'19), single-end 100bp reads; Table 5.
GENCACHE = SystemPerf("GenCache", area_mm2=33.7, power_w=11.2,
                      throughput_mbps=2172.0)

#: GenDP standalone running the full Minimap2 pipeline; Table 5.
GENDP_STANDALONE = SystemPerf("GenDP", area_mm2=315.8, power_w=209.1,
                              throughput_mbps=24300.0)

#: Minimap2 on the Xeon Gold 6238T (Table 2: 300 mm^2 die).  Throughput
#: and RAPL power reconstructed from the paper's 958x per-area and 1575x
#: per-Watt ratios against GenPairX+GenDP.
MM2_CPU = SystemPerf("MM2 (CPU)", area_mm2=300.0, power_w=270.0,
                     throughput_mbps=47.5)

#: GenPair + MM2 software hybrid on the same CPU: 1.72x MM2's throughput
#: (§7.4, observation five).
GENPAIR_MM2_CPU = SystemPerf("GenPair+MM2 (CPU)", area_mm2=300.0,
                             power_w=270.0, throughput_mbps=47.5 * 1.72)

#: BWA-MEM end-to-end GPU implementation on an NVIDIA A100 (826 mm^2,
#: 250 W TDP); throughput reconstructed from the 3053x / 1685x ratios.
BWA_MEM_GPU = SystemPerf("BWA-MEM (GPU)", area_mm2=826.0, power_w=250.0,
                         throughput_mbps=41.0)

#: The paper's own headline row (Table 5) — used to validate our composed
#: design against the publication.
PAPER_GENPAIRX_GENDP = SystemPerf("GenPairX+GenDP (paper)",
                                  area_mm2=381.1, power_w=209.0,
                                  throughput_mbps=57810.0)

#: Long-read mode: roughly one order of magnitude below short reads
#: (§7.4, observation six).
PAPER_GENPAIRX_LONGREAD_MBPS = 5781.0

ALL_BASELINES: Tuple[SystemPerf, ...] = (
    MM2_CPU, GENPAIR_MM2_CPU, GENCACHE, GENDP_STANDALONE, BWA_MEM_GPU)


# -- Fig 9 platforms (SeedMap-query comparison) -----------------------------

#: Area/power envelopes used for the Fig 9 per-area / per-Watt bars.
#: CPU: Xeon die + DDR interface; GPU: GV100 die (Table 2) at board power;
#: NMSL: HBM PHY + buffer logic + the HBM stacks' active power.
FIG9_CPU_ENVELOPE = (300.0, 205.0)    # mm^2, W
FIG9_GPU_ENVELOPE = (815.0, 250.0)
FIG9_NMSL_ENVELOPE = (66.8, 25.3)

#: Software efficiency factors for the Fig 9 alternatives: the GPU kernel
#: reaches ~47% of raw channel throughput (warp divergence, §7.1); the
#: multi-threaded CPU implementation ~80% of its 12-channel DDR5 platform.
GPU_NMSL_EFFICIENCY = 0.47
CPU_NMSL_EFFICIENCY = 0.80
