"""GenPairX design composition: sizing, balancing, area/power, end-to-end.

This module rebuilds the paper's §7.2-§7.4 methodology:

1. the NMSL event simulator determines the sustainable pair rate (the
   whole design is sized to NMSL's throughput, §7.2);
2. each compute module is replicated until it matches that rate
   (Table 3);
3. SRAM (centralized buffer + channel FIFOs), the HBM PHY, and the
   GenDP share sized for the residual DP workload are added up (Table 4);
4. end-to-end throughput is the pair rate times the pair's base count
   (2 x read length: 192.7 MPair/s x 300bp = 57,810 Mbp/s, Table 5).

The workload parameters can come from the paper (defaults) or be measured
from a run of the functional pipeline via
:meth:`WorkloadProfile.from_pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np

from .baselines import SystemPerf
from .gendp import GenDPSizing, residual_mcups
from .memory import HBM2, MemoryConfig
from .modules import (CLOCK_GHZ, ModuleSizing, filtering_module,
                      light_alignment_module, seeding_module)
from .nmsl import NMSLConfig, NMSLReport, NMSLSimulator, \
    synthetic_location_counts
from .scaling import BlockCost
from .sram import SramModel

#: HBM PHY cost from existing chips (§7.3, Table 4).
HBM_PHY_COST = BlockCost(area_mm2=60.0, power_mw=320.0)


@dataclass(frozen=True)
class WorkloadProfile:
    """Workload statistics that drive sizing (paper §7.2 defaults)."""

    read_length: int = 150
    #: Mean Paired-Adjacency Filtering comparator iterations per pair.
    mean_filter_iterations: float = 24.1
    #: Mean light alignments attempted per pair.
    mean_light_alignments: float = 11.6
    #: Mean SeedMap locations returned per seed lookup (Observation 2).
    mean_locations_per_seed: float = 9.6
    #: Residual DP chaining cells per pair (averaged over *all* pairs).
    chain_cells_per_pair: float = 331_772e6 / 192.7e6
    #: Residual DP alignment cells per pair.
    align_cells_per_pair: float = 3_469_180e6 / 192.7e6

    @classmethod
    def paper(cls) -> "WorkloadProfile":
        """The published workload statistics."""
        return cls()

    @classmethod
    def from_pipeline(cls, pipeline_stats, mapper_stats=None,
                      read_length: int = 150) -> "WorkloadProfile":
        """Derive a profile from a functional-pipeline run.

        ``pipeline_stats`` is a :class:`repro.core.PipelineStats`;
        ``mapper_stats`` (a :class:`repro.mapper.MapperStats`) supplies
        the chaining/alignment split of the full-fallback DP cells when
        the hybrid ran with a baseline-mapper fallback.
        """
        pairs = max(1, pipeline_stats.pairs_total)
        align_cells = pipeline_stats.dp_cells_candidate
        chain_cells = 0.0
        if mapper_stats is not None:
            chain_cells += mapper_stats.dp_cells_chaining
            align_cells += mapper_stats.dp_cells_alignment
        else:
            align_cells += pipeline_stats.dp_cells_full
        # Seed lookups: 6 per orientation attempt; normalize to the
        # six-seed pair of the hardware dataflow.
        lookups = 6 * pairs
        return cls(
            read_length=read_length,
            mean_filter_iterations=max(
                1.0, pipeline_stats.filter_iterations / pairs),
            mean_light_alignments=max(
                1.0, pipeline_stats.light_attempts / pairs),
            mean_locations_per_seed=max(
                1.0, pipeline_stats.locations_fetched / lookups),
            chain_cells_per_pair=chain_cells / pairs,
            align_cells_per_pair=align_cells / pairs,
        )


@dataclass
class DesignReport:
    """Everything the Table 3/4/5 benches print."""

    nmsl: NMSLReport
    modules: List[ModuleSizing]
    centralized_buffer: SramModel
    channel_fifos: SramModel
    gendp: GenDPSizing
    workload: WorkloadProfile

    @property
    def target_mpairs(self) -> float:
        return self.nmsl.throughput_mpairs_per_s

    @property
    def genpairx_cost(self) -> BlockCost:
        """GenPairX alone: modules + HBM PHY + SRAM (Table 4 subtotal)."""
        cost = BlockCost(0.0, 0.0)
        for module in self.modules:
            cost = cost + module.total_cost
        cost = cost + HBM_PHY_COST
        cost = cost + BlockCost(self.centralized_buffer.area_mm2,
                                self.centralized_buffer.power_mw)
        cost = cost + BlockCost(self.channel_fifos.area_mm2,
                                self.channel_fifos.power_mw)
        return cost

    @property
    def total_cost(self) -> BlockCost:
        """GenPairX + GenDP + interconnect (Table 4 bottom line)."""
        from .gendp import INTERCONNECT_COST
        return (self.genpairx_cost + self.gendp.total_cost
                + INTERCONNECT_COST)

    @property
    def throughput_mbps(self) -> float:
        """End-to-end Mbp/s: pair rate x bases per pair."""
        return self.target_mpairs * 2 * self.workload.read_length

    def throughput_under(self, workload: "WorkloadProfile"
                         ) -> Tuple[float, str]:
        """Sustained pair rate of *this provisioned design* under a
        different workload, and the limiting component.

        This is the §7.7 mechanism: a design provisioned for the nominal
        workload slows down when a harder workload (higher error rate)
        raises the per-pair demand on Light Alignment or on the GenDP
        fallback.  Each fixed resource pool caps the rate at
        ``provisioned capacity / per-pair demand``; the end-to-end rate
        is the minimum across NMSL and the pools.
        """
        rate = self.nmsl.throughput_mpairs_per_s
        bottleneck = "NMSL"
        by_name = {module.name: module for module in self.modules}
        light = by_name.get("Light Alignment")
        if light is not None and workload.mean_light_alignments > 0:
            cycles = (workload.read_length + 6) \
                * workload.mean_light_alignments
            light_rate = (light.instances * CLOCK_GHZ * 1e3) / cycles
            if light_rate < rate:
                rate, bottleneck = light_rate, "Light Alignment"
        filtering = by_name.get("Paired-Adjacency Filtering")
        if filtering is not None and workload.mean_filter_iterations > 0:
            filter_rate = (filtering.instances * CLOCK_GHZ * 1e3) \
                / workload.mean_filter_iterations
            if filter_rate < rate:
                rate, bottleneck = filter_rate, "Paired-Adjacency Filter"
        total_cells = (workload.chain_cells_per_pair
                       + workload.align_cells_per_pair)
        if total_cells > 0:
            gendp_capacity = self.gendp.chain_mcups \
                + self.gendp.align_mcups
            gendp_rate = gendp_capacity / total_cells
            if gendp_rate < rate:
                rate, bottleneck = gendp_rate, "GenDP (DP fallback)"
        return rate, bottleneck

    def as_system_perf(self, name: str = "GenPairX+GenDP") -> SystemPerf:
        cost = self.total_cost
        return SystemPerf(name=name, area_mm2=cost.area_mm2,
                          power_w=cost.power_mw / 1e3,
                          throughput_mbps=self.throughput_mbps)

    def area_power_rows(self) -> List[Tuple[str, float, float]]:
        """Table 4 rows: (component, area mm^2, power mW)."""
        rows: List[Tuple[str, float, float]] = []
        for module in self.modules:
            cost = module.total_cost
            rows.append((module.name, cost.area_mm2, cost.power_mw))
        rows.append(("HBM PHY", HBM_PHY_COST.area_mm2,
                     HBM_PHY_COST.power_mw))
        rows.append((f"Centralized Buffer "
                     f"({self.centralized_buffer.size_mb:.2f} MB)",
                     self.centralized_buffer.area_mm2,
                     self.centralized_buffer.power_mw))
        rows.append((f"FIFOs ({self.channel_fifos.size_bytes // 1024} KB)",
                     self.channel_fifos.area_mm2,
                     self.channel_fifos.power_mw))
        sub = self.genpairx_cost
        rows.append(("GenPairX", sub.area_mm2, sub.power_mw))
        chain = self.gendp.chain_cost
        align = self.gendp.align_cost
        rows.append(("GenDP Chain", chain.area_mm2, chain.power_mw))
        rows.append(("GenDP Align", align.area_mm2, align.power_mw))
        total = self.total_cost
        rows.append(("GenPairX + GenDP", total.area_mm2, total.power_mw))
        return rows


class GenPairXDesign:
    """Composes a full GenPairX + GenDP design for a workload."""

    def __init__(self, workload: WorkloadProfile = WorkloadProfile.paper(),
                 memory: MemoryConfig = HBM2,
                 window_size: Optional[int] = 1024,
                 clock_ghz: float = CLOCK_GHZ,
                 simulated_pairs: int = 20_000,
                 seed: int = 0) -> None:
        self.workload = workload
        self.memory = memory
        self.window_size = window_size
        self.clock_ghz = clock_ghz
        self.simulated_pairs = simulated_pairs
        self.seed = seed

    def compose(self) -> DesignReport:
        """Run NMSL sizing and build the full design report."""
        rng = np.random.default_rng(self.seed)
        counts = synthetic_location_counts(
            rng, self.simulated_pairs,
            mean=self.workload.mean_locations_per_seed)
        config = NMSLConfig(memory=self.memory,
                            window_size=self.window_size)
        nmsl = NMSLSimulator(config).simulate(counts)
        rate = nmsl.throughput_mpairs_per_s
        modules = [
            seeding_module(rate, self.clock_ghz),
            filtering_module(rate, self.workload.mean_filter_iterations,
                             self.clock_ghz),
            light_alignment_module(rate, self.workload.read_length,
                                   self.workload.mean_light_alignments,
                                   self.clock_ghz),
        ]
        buffer = nmsl.centralized_buffer
        fifos = SramModel(size_bytes=max(nmsl.channel_fifo_bytes,
                                         16 * 1024),
                          activity=1.0)
        gendp = GenDPSizing(
            chain_mcups=residual_mcups(self.workload.chain_cells_per_pair,
                                       rate),
            align_mcups=residual_mcups(self.workload.align_cells_per_pair,
                                       rate))
        return DesignReport(nmsl=nmsl, modules=modules,
                            centralized_buffer=buffer, channel_fifos=fifos,
                            gendp=gendp, workload=self.workload)
