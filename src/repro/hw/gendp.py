"""GenDP: the DP-fallback accelerator GenPairX integrates with (§7.4).

GenDP (Gu et al., ISCA'23) accelerates chaining and alignment DP.  The
paper sizes a GenDP instance to absorb GenPairX's *residual* workload —
the read-pairs that fall back to DP chaining and/or DP alignment — using
GenDP's published efficiency in MCUPS (million DP cell updates per second)
per mm^2 and per mW.  We encode those efficiencies exactly as the paper's
Table 4 implies:

* residual chaining demand 331,772 MCUPS -> 174.9 mm^2 / 115.8 W,
* residual alignment demand 3,469,180 MCUPS -> 139.4 mm^2 / 92.3 W.

The design composer converts the functional pipeline's measured DP-cell
counts into MCUPS at the target pair rate and prices the GenDP share with
these constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from .scaling import BlockCost

#: Paper residual demand for a 192.7 MPair/s GenPairX front-end (§7.4).
PAPER_RESIDUAL_CHAIN_MCUPS = 331_772.0
PAPER_RESIDUAL_ALIGN_MCUPS = 3_469_180.0

#: GenDP efficiency constants implied by Table 4 (MCUPS per mm^2 / mW).
CHAIN_MCUPS_PER_MM2 = PAPER_RESIDUAL_CHAIN_MCUPS / 174.9
CHAIN_MCUPS_PER_MW = PAPER_RESIDUAL_CHAIN_MCUPS / 115.8e3
ALIGN_MCUPS_PER_MM2 = PAPER_RESIDUAL_ALIGN_MCUPS / 139.4
ALIGN_MCUPS_PER_MW = PAPER_RESIDUAL_ALIGN_MCUPS / 92.3e3

#: Interconnect between GenPairX and GenDP: AXI-Stream bus plus burst
#: FIFOs (§7.4; "negligible in the context of the overall design").
INTERCONNECT_COST = BlockCost(area_mm2=1.0 + 1.3, power_mw=50.0 + 500.0)


@dataclass(frozen=True)
class GenDPSizing:
    """GenDP capacity provisioned for a residual DP workload."""

    chain_mcups: float
    align_mcups: float

    @property
    def chain_cost(self) -> BlockCost:
        return BlockCost(area_mm2=self.chain_mcups / CHAIN_MCUPS_PER_MM2,
                         power_mw=self.chain_mcups / CHAIN_MCUPS_PER_MW)

    @property
    def align_cost(self) -> BlockCost:
        return BlockCost(area_mm2=self.align_mcups / ALIGN_MCUPS_PER_MM2,
                         power_mw=self.align_mcups / ALIGN_MCUPS_PER_MW)

    @property
    def total_cost(self) -> BlockCost:
        return self.chain_cost + self.align_cost


def residual_mcups(cells_per_pair: float,
                   pair_rate_mpairs: float) -> float:
    """Convert DP cells/pair at a pair rate into MCUPS demand.

    ``cells_per_pair`` is averaged over *all* pairs (fallback pairs carry
    the cells, the rest contribute zero), so multiplying by the front-end
    pair rate gives the sustained cell-update rate the fallback engine
    must absorb.
    """
    cells_per_second = cells_per_pair * pair_rate_mpairs * 1e6
    return cells_per_second / 1e6


def paper_sizing() -> GenDPSizing:
    """The paper's published residual sizing (§7.4)."""
    return GenDPSizing(chain_mcups=PAPER_RESIDUAL_CHAIN_MCUPS,
                       align_mcups=PAPER_RESIDUAL_ALIGN_MCUPS)
