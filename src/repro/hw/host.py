"""Host integration model: PCIe bandwidth and wire encodings (§7.4).

GenPairX saturates at 192.7 MPair/s.  The host must stream read-pairs in
(2-bit encoded: a 150bp read-pair is 2 x 38 = 76 bytes, the paper rounds
to 75) and results out (8-byte locations + ~20-byte CIGAR strings per
pair).  The paper concludes 14.5 GB/s in / 5.4 GB/s out, within both
PCIe Gen3 x16 and Gen4 x16.  This module reproduces that accounting and
exposes it for other design points (different read lengths or rates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class PcieLink:
    """One PCIe configuration: usable bandwidth in GB/s."""

    name: str
    lanes: int
    #: Effective per-lane bandwidth after encoding overhead, GB/s.
    lane_bandwidth_gbps: float

    @property
    def bandwidth_gbps(self) -> float:
        return self.lanes * self.lane_bandwidth_gbps


#: PCIe Gen3 x16: 8 GT/s with 128b/130b -> ~0.985 GB/s per lane.
PCIE_GEN3_X16 = PcieLink("PCIe Gen3 x16", lanes=16,
                         lane_bandwidth_gbps=0.985)

#: PCIe Gen4 x16: 16 GT/s -> ~1.969 GB/s per lane.
PCIE_GEN4_X16 = PcieLink("PCIe Gen4 x16", lanes=16,
                         lane_bandwidth_gbps=1.969)


def pair_wire_bytes(read_length: int = 150) -> int:
    """2-bit wire encoding of one read-pair (both mates)."""
    per_read = (read_length + 3) // 4
    return 2 * per_read


#: Result record: 8-byte location plus ~20-byte CIGAR (§7.4).
RESULT_BYTES_PER_PAIR = 8 + 20


@dataclass(frozen=True)
class HostBandwidthReport:
    """Input/output bandwidth demand at a given pair rate."""

    pair_rate_mpairs: float
    read_length: int
    input_gbps: float
    output_gbps: float

    def fits(self, link: PcieLink) -> bool:
        """Does the (full-duplex) link sustain both directions?"""
        return (self.input_gbps <= link.bandwidth_gbps
                and self.output_gbps <= link.bandwidth_gbps)


def host_bandwidth(pair_rate_mpairs: float = 192.7,
                   read_length: int = 150) -> HostBandwidthReport:
    """Compute host-side bandwidth demand (paper: 14.5 in / 5.4 out)."""
    rate = pair_rate_mpairs * 1e6
    input_gbps = rate * pair_wire_bytes(read_length) / 1e9
    output_gbps = rate * RESULT_BYTES_PER_PAIR / 1e9
    return HostBandwidthReport(pair_rate_mpairs=pair_rate_mpairs,
                               read_length=read_length,
                               input_gbps=input_gbps,
                               output_gbps=output_gbps)


def link_feasibility(report: HostBandwidthReport
                     ) -> Dict[str, Tuple[float, bool]]:
    """Per-link (headroom factor, fits) for the standard PCIe options."""
    out = {}
    for link in (PCIE_GEN3_X16, PCIE_GEN4_X16):
        demand = max(report.input_gbps, report.output_gbps)
        out[link.name] = (link.bandwidth_gbps / demand if demand else
                          float("inf"), report.fits(link))
    return out
