"""End-to-end GenPairX datapath simulation: the §7.2 balancing study.

Table 3 sizes each module for the *average* workload, but per-pair work
varies wildly (a repeat-heavy pair can need hundreds of filter iterations
and dozens of light alignments).  The paper's fix is SRAM circular
buffers "positioned immediately before the Light Alignment modules as
well as between the NMSL and the Paired-Adjacency Filtering modules" to
absorb those bursts (§7.2, *Optimization for Balancing*).

This module simulates the full tandem pipeline —

    Partitioned Seeding -> NMSL -> circular buffer ->
    Paired-Adjacency Filtering -> circular buffer -> Light Alignment

— as a finite-buffer, multi-server queueing network with
blocking-after-service: a pair occupies its upstream server until the
downstream buffer has space, so undersized buffers genuinely throttle
the whole pipe.  The bench sweeps the buffer capacity and shows the
throughput recovery the paper's circular buffers provide.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .modules import CLOCK_GHZ


@dataclass(frozen=True)
class StageConfig:
    """One pipeline stage: a pool of identical servers."""

    name: str
    servers: int
    #: Input buffer capacity, in pairs (None = unbounded).
    buffer_capacity: Optional[int] = None


@dataclass(frozen=True)
class PipelineSimConfig:
    """The GenPairX datapath with the paper's Table 3 instance counts."""

    clock_ghz: float = CLOCK_GHZ
    seeding: StageConfig = StageConfig("Partitioned Seeding", 1, None)
    nmsl: StageConfig = StageConfig("NMSL", 32, 64)
    filtering: StageConfig = StageConfig("Paired-Adjacency Filtering", 3,
                                         256)
    light: StageConfig = StageConfig("Light Alignment", 176, 1024)

    @property
    def stages(self) -> Tuple[StageConfig, ...]:
        return (self.seeding, self.nmsl, self.filtering, self.light)

    def with_buffers(self, capacity: Optional[int]
                     ) -> "PipelineSimConfig":
        """Same pipeline with every inter-stage buffer set to
        ``capacity`` (the balancing-ablation knob)."""
        return PipelineSimConfig(
            clock_ghz=self.clock_ghz,
            seeding=self.seeding,
            nmsl=StageConfig("NMSL", self.nmsl.servers, capacity),
            filtering=StageConfig(self.filtering.name,
                                  self.filtering.servers, capacity),
            light=StageConfig(self.light.name, self.light.servers,
                              capacity))


@dataclass
class StageReport:
    """Per-stage outcome."""

    name: str
    utilization: float
    max_queue: int
    blocked_ns: float


@dataclass
class PipelineSimReport:
    """End-to-end datapath simulation outcome."""

    pairs: int
    elapsed_ns: float
    stages: List[StageReport]

    @property
    def throughput_mpairs_per_s(self) -> float:
        if self.elapsed_ns == 0:
            return 0.0
        return self.pairs / self.elapsed_ns * 1e3

    def stage(self, name: str) -> StageReport:
        for report in self.stages:
            if report.name == name:
                return report
        raise KeyError(name)


@dataclass(frozen=True)
class PairWorkload:
    """Per-pair service demands, in cycles (converted to ns internally).

    Arrays are parallel, one entry per pair: NMSL service is expressed in
    nanoseconds directly (it is memory-, not clock-, bound).
    """

    seeding_cycles: np.ndarray
    nmsl_service_ns: np.ndarray
    filter_cycles: np.ndarray
    light_cycles: np.ndarray


def sample_workload(rng: np.random.Generator, pairs: int,
                    mean_filter_iterations: float = 24.1,
                    mean_light_alignments: float = 11.6,
                    read_length: int = 150,
                    nmsl_rate_mpairs: float = 192.7,
                    burstiness: float = 2.0) -> PairWorkload:
    """Draw a bursty per-pair workload with the paper's §7.2 means.

    ``burstiness`` is the shape parameter of the gamma draw (lower =
    burstier); the heavy tail is what the circular buffers exist to
    absorb.
    """
    def gamma_with_mean(mean: float) -> np.ndarray:
        return rng.gamma(burstiness, mean / burstiness, size=pairs)

    filter_cycles = np.maximum(1.0,
                               gamma_with_mean(mean_filter_iterations))
    light_cycles = np.maximum(
        0.0, gamma_with_mean(mean_light_alignments)) \
        * (read_length + 6)
    nmsl_mean_ns = 1e3 / nmsl_rate_mpairs * 32  # per-server service
    nmsl_service = gamma_with_mean(nmsl_mean_ns)
    return PairWorkload(
        seeding_cycles=np.full(pairs, 6.0),
        nmsl_service_ns=nmsl_service,
        filter_cycles=filter_cycles,
        light_cycles=light_cycles)


class GenPairXPipelineSim:
    """Finite-buffer tandem-queue simulation of the whole datapath."""

    def __init__(self,
                 config: Optional[PipelineSimConfig] = None) -> None:
        self.config = config if config is not None \
            else PipelineSimConfig()

    def simulate(self, workload: PairWorkload) -> PipelineSimReport:
        config = self.config
        cycle_ns = 1.0 / config.clock_ghz
        services = [
            workload.seeding_cycles * cycle_ns,
            workload.nmsl_service_ns,
            workload.filter_cycles * cycle_ns,
            workload.light_cycles * cycle_ns,
        ]
        pairs = len(services[0])
        stage_configs = list(config.stages)
        count = len(stage_configs)

        # Per-stage server pools as min-heaps of free times, start and
        # *leave* times per pair (leave >= finish due to blocking).
        start = [np.zeros(pairs) for _ in range(count)]
        leave = [np.zeros(pairs) for _ in range(count)]
        heaps: List[List[float]] = [[0.0] * sc.servers
                                    for sc in stage_configs]
        for heap in heaps:
            heapq.heapify(heap)
        busy = [0.0] * count
        blocked = [0.0] * count
        max_queue = [0] * count

        for i in range(pairs):
            ready = 0.0  # arrival of pair i to the first stage
            for k in range(count):
                stage = stage_configs[k]
                # Admission: the input buffer of stage k must have
                # space.  Space frees when pair i - capacity *started*
                # service at stage k.
                capacity = stage.buffer_capacity
                if capacity is not None and i >= capacity:
                    ready = max(ready, start[k][i - capacity])
                server_free = heapq.heappop(heaps[k])
                begin = max(ready, server_free)
                finish = begin + services[k][i]
                # Blocking-after-service: cannot leave stage k until the
                # next stage's buffer admits the pair.
                if k + 1 < count:
                    next_cap = stage_configs[k + 1].buffer_capacity
                    if next_cap is not None and i >= next_cap:
                        depart = max(finish,
                                     start[k + 1][i - next_cap])
                    else:
                        depart = finish
                else:
                    depart = finish
                start[k][i] = begin
                leave[k][i] = depart
                busy[k] += services[k][i]
                blocked[k] += depart - finish
                heapq.heappush(heaps[k], depart)
                ready = depart
        elapsed = float(max(leave[-1][-1],
                            max(max(h) for h in heaps))) if pairs else 0.0

        reports = []
        for k, stage in enumerate(stage_configs):
            utilization = busy[k] / (elapsed * stage.servers) \
                if elapsed else 0.0
            # Max backlog: pairs whose ready time preceded their start.
            waits = start[k] - (leave[k - 1] if k else
                                np.zeros(pairs))
            backlog = int(np.count_nonzero(waits > 1e-12))
            reports.append(StageReport(name=stage.name,
                                       utilization=float(utilization),
                                       max_queue=backlog,
                                       blocked_ns=float(blocked[k])))
        return PipelineSimReport(pairs=pairs, elapsed_ns=elapsed,
                                 stages=reports)
