"""Memory technology models: HBM2, GDDR6, DDR5 channel configurations.

NMSL's throughput is bounded by how many small random accesses per second
the memory can serve across its channels (§5.2, §7.5).  Each technology is
modeled by its channel count, per-channel bandwidth, and an *effective
random-access service interval* — the average time one channel needs per
independent lookup, folding in row-cycle constraints and bank-level
parallelism.  One request's service time is::

    service = random_access_ns + burst_bytes / bandwidth

The per-technology constants are calibrated so the SeedMap-query
throughput ordering and ratios of Table 6 are reproduced (HBM2 ~11x DDR5,
~10x GDDR6); the calibration is validated in the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryConfig:
    """One memory technology attached to NMSL."""

    name: str
    channels: int
    #: Sustainable sequential bandwidth per channel, GB/s.
    channel_bandwidth_gbps: float
    #: Effective service interval per independent random access, ns.
    random_access_ns: float
    #: Active power per channel, mW (feeds the §7.5 power analysis).
    channel_power_mw: float

    def service_time_ns(self, burst_bytes: int) -> float:
        """Time for one request with a ``burst_bytes`` payload."""
        transfer = burst_bytes / self.channel_bandwidth_gbps
        return self.random_access_ns + transfer

    @property
    def total_bandwidth_gbps(self) -> float:
        return self.channels * self.channel_bandwidth_gbps


#: HBM2e as configured in §6: four 8GB stacks, eight 128-bit channels per
#: stack (32 channels), 2 GB/s per pin -> 32 GB/s per channel.  The
#: effective random-access interval reflects bank-level parallelism
#: hiding most of tRC.
HBM2 = MemoryConfig(name="HBM2", channels=32, channel_bandwidth_gbps=32.0,
                    random_access_ns=26.0, channel_power_mw=780.0)

#: GDDR6: 8 channels; high burst bandwidth but bank-group timing limits
#: independent random accesses per channel.
GDDR6 = MemoryConfig(name="GDDR6", channels=8,
                     channel_bandwidth_gbps=64.0,
                     random_access_ns=63.0, channel_power_mw=2300.0)

#: DDR5-4800, 4 channels (commodity server configuration).
DDR5 = MemoryConfig(name="DDR5", channels=4,
                    channel_bandwidth_gbps=38.4,
                    random_access_ns=37.0, channel_power_mw=3200.0)

#: DDR4-2933 6-channel, the CPU baseline's memory (Table 2).
DDR4 = MemoryConfig(name="DDR4", channels=6,
                    channel_bandwidth_gbps=23.5,
                    random_access_ns=45.0, channel_power_mw=2800.0)

MEMORY_PRESETS = {config.name: config
                  for config in (HBM2, GDDR6, DDR5, DDR4)}
