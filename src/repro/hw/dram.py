"""Bank-level DRAM channel timing model (the Ramulator 2.0 role).

The paper models HBM timing with Ramulator 2.0 and power with DRAMsim3
(§6).  The coarse :class:`~repro.hw.memory.MemoryConfig` folds everything
into one effective random-access interval; this module refines that with
the first-order DRAM mechanics that actually shape NMSL's service-time
distribution:

* each channel has ``banks`` independent banks; requests to different
  banks overlap, requests to the same bank serialize on ``tRC``;
* a request to an *open row* costs only ``tCAS`` plus burst time (row
  buffer hit); a closed/conflicting row pays ``tRP + tRCD`` first;
* burst transfer occupies the channel data bus (``bytes / bandwidth``),
  which serializes across banks.

The refined model produces a *dispersed* service-time distribution —
bursty row hits interleaved with expensive conflicts — which is what
pushes the Fig 8 saturation knee to larger windows than a fixed service
time would (see EXPERIMENTS.md deviation note 2).

:class:`DramChannelModel.sample_service_times` is plugged into
:class:`~repro.hw.nmsl.NMSLSimulator` via ``NMSLConfig.dram_timing``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DramTiming:
    """First-order DRAM timing for one channel (nanoseconds)."""

    name: str
    banks: int
    #: Activate-to-activate (same bank) interval.
    t_rc: float
    #: Precharge + activate cost on a row conflict.
    t_rp_rcd: float
    #: Column access latency (row hit).
    t_cas: float
    #: Channel data-bus bandwidth, GB/s.
    bandwidth_gbps: float
    #: Probability a request hits an open row.  SeedMap queries are
    #: near-random over the table, so hits come mostly from multi-burst
    #: location reads within one row.
    row_hit_rate: float

    def mean_service_ns(self, burst_bytes: float) -> float:
        """Expected single-request service time (for calibration)."""
        miss = 1.0 - self.row_hit_rate
        access = (self.row_hit_rate * self.t_cas
                  + miss * (self.t_rp_rcd + self.t_cas))
        # Bank-level parallelism hides part of the bank-busy time; the
        # exposed cost is bounded below by the bus occupancy.
        exposed = max(access / max(1.0, self.banks / 4.0), self.t_cas)
        return exposed + burst_bytes / self.bandwidth_gbps


#: HBM2e pseudo-channel: 16 banks, conservative JEDEC-class timings.
HBM2_TIMING = DramTiming(name="HBM2", banks=16, t_rc=45.0,
                         t_rp_rcd=29.0, t_cas=14.0,
                         bandwidth_gbps=32.0, row_hit_rate=0.35)

#: DDR5-4800 channel.
DDR5_TIMING = DramTiming(name="DDR5", banks=32, t_rc=46.0,
                         t_rp_rcd=32.0, t_cas=16.7,
                         bandwidth_gbps=38.4, row_hit_rate=0.30)

#: GDDR6: fast bus, but bank-group turnaround penalizes random streams.
GDDR6_TIMING = DramTiming(name="GDDR6", banks=16, t_rc=45.0,
                          t_rp_rcd=36.0, t_cas=18.0,
                          bandwidth_gbps=64.0, row_hit_rate=0.25)

DRAM_TIMINGS = {timing.name: timing
                for timing in (HBM2_TIMING, DDR5_TIMING, GDDR6_TIMING)}


class DramChannelModel:
    """Stochastic per-request service times from bank-level mechanics.

    The NMSL simulator serializes requests per channel; this model
    supplies each request's service time by simulating the bank state a
    request encounters: which bank it lands on, whether the row is open,
    and how much of the bank-busy time the channel's parallelism hides.
    """

    def __init__(self, timing: DramTiming, seed: int = 0) -> None:
        self.timing = timing
        self._rng = np.random.default_rng(seed)

    def sample_service_times(self, burst_bytes: np.ndarray) -> np.ndarray:
        """Service time for each request given its burst payload."""
        timing = self.timing
        count = burst_bytes.size
        hits = self._rng.random(count) < timing.row_hit_rate
        access = np.where(hits, timing.t_cas,
                          timing.t_rp_rcd + timing.t_cas)
        # Same-bank collision with the previous outstanding request: the
        # request additionally waits out the remaining tRC window.
        same_bank = self._rng.random(count) < (1.0 / timing.banks)
        access = access + same_bank * timing.t_rc
        # Bank-level parallelism hides part of the access latency when
        # the queue is deep; model the hidden fraction stochastically.
        hidden = self._rng.random(count) * (1.0 - 4.0 / timing.banks)
        exposed = np.maximum(access * (1.0 - hidden), timing.t_cas)
        transfer = np.asarray(burst_bytes, dtype=float) \
            / timing.bandwidth_gbps
        return exposed + transfer
