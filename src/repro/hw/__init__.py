"""Hardware model: NMSL/memory simulation, module sizing, area/power.

This package rebuilds the paper's hardware-evaluation methodology in
Python: an event-driven NMSL-over-memory-channels simulator (Figs 8-9,
Table 6), compute-module performance/cost models (Table 3), a CACTI-like
SRAM surrogate, technology scaling, the GenDP residual-DP sizing (§7.4,
Table 4), and published baseline systems (Fig 11, Table 5).
"""

from .baselines import (ALL_BASELINES, BWA_MEM_GPU, CPU_NMSL_EFFICIENCY,
                        FIG9_CPU_ENVELOPE, FIG9_GPU_ENVELOPE,
                        FIG9_NMSL_ENVELOPE, GENCACHE, GENDP_STANDALONE,
                        GENPAIR_MM2_CPU, GPU_NMSL_EFFICIENCY, MM2_CPU,
                        PAPER_GENPAIRX_GENDP,
                        PAPER_GENPAIRX_LONGREAD_MBPS, SystemPerf)
from .dram import (DDR5_TIMING, DRAM_TIMINGS, DramChannelModel,
                   DramTiming, GDDR6_TIMING, HBM2_TIMING)
from .design import (DesignReport, GenPairXDesign, HBM_PHY_COST,
                     WorkloadProfile)
from .host import (HostBandwidthReport, PCIE_GEN3_X16, PCIE_GEN4_X16,
                   PcieLink, host_bandwidth, link_feasibility,
                   pair_wire_bytes)
from .gendp import (GenDPSizing, INTERCONNECT_COST,
                    PAPER_RESIDUAL_ALIGN_MCUPS,
                    PAPER_RESIDUAL_CHAIN_MCUPS, paper_sizing,
                    residual_mcups)
from .memory import DDR4, DDR5, GDDR6, HBM2, MEMORY_PRESETS, MemoryConfig
from .modules import (CLOCK_GHZ, ModuleSizing, filtering_module,
                      light_alignment_module, seeding_module)
from .pipeline_sim import (GenPairXPipelineSim, PairWorkload,
                           PipelineSimConfig, PipelineSimReport,
                           StageConfig, sample_workload)
from .nmsl import (NMSLConfig, NMSLReport, NMSLSimulator,
                   synthetic_location_counts)
from .scaling import AREA_SCALE_TO_7NM, BlockCost, POWER_SCALE_TO_7NM
from .sram import SramModel, centralized_buffer_size

__all__ = [
    "ALL_BASELINES", "AREA_SCALE_TO_7NM", "BWA_MEM_GPU", "BlockCost",
    "CLOCK_GHZ", "CPU_NMSL_EFFICIENCY", "DDR4", "DDR5", "DDR5_TIMING",
    "DRAM_TIMINGS", "DesignReport", "DramChannelModel", "DramTiming",
    "GDDR6_TIMING", "HBM2_TIMING",
    "FIG9_CPU_ENVELOPE", "FIG9_GPU_ENVELOPE", "FIG9_NMSL_ENVELOPE",
    "GDDR6", "GENCACHE", "GENDP_STANDALONE", "GENPAIR_MM2_CPU",
    "GPU_NMSL_EFFICIENCY", "GenDPSizing", "GenPairXDesign",
    "HBM2", "HBM_PHY_COST", "HostBandwidthReport", "INTERCONNECT_COST",
    "MEMORY_PRESETS", "PCIE_GEN3_X16", "PCIE_GEN4_X16", "PcieLink",
    "host_bandwidth", "link_feasibility", "pair_wire_bytes",
    "MM2_CPU", "MemoryConfig", "ModuleSizing", "NMSLConfig", "NMSLReport",
    "GenPairXPipelineSim", "PairWorkload", "PipelineSimConfig",
    "PipelineSimReport", "StageConfig", "sample_workload",
    "NMSLSimulator", "PAPER_GENPAIRX_GENDP",
    "PAPER_GENPAIRX_LONGREAD_MBPS", "PAPER_RESIDUAL_ALIGN_MCUPS",
    "PAPER_RESIDUAL_CHAIN_MCUPS", "POWER_SCALE_TO_7NM", "SramModel",
    "SystemPerf", "WorkloadProfile", "centralized_buffer_size",
    "filtering_module", "light_alignment_module", "paper_sizing",
    "residual_mcups", "seeding_module", "synthetic_location_counts",
]
