"""Near-Memory Seed Locator (NMSL) event simulator (§5.2, §7.1).

Models the SeedMap-query engine: six seed lookups per read-pair are
dispatched across all memory channels (uniform placement, per-channel
input FIFOs), and a read-pair-granularity *sliding window* bounds the
number of in-flight pairs so the centralized buffer stays deadlock-free.

The simulator reproduces the paper's Fig 8 trade-off curves:

* throughput rises with window size and saturates (window 1024 reaches
  ~92% of the no-window asymptote in the paper);
* the required channel-FIFO depth grows with the window;
* centralized-buffer SRAM grows linearly with the window
  (window x 6 FIFOs x index-threshold entries).

Simulation model: requests are issued in pair order; pair ``i`` may issue
only once pair ``i - window`` has fully completed (the in-order window
advance of §5.2).  Each channel serves its queue FIFO; one request costs
``random_access_ns`` for the Seed Table access plus the burst transfer of
the seed's location list.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .memory import HBM2, MemoryConfig
from .sram import SramModel, centralized_buffer_size


@dataclass(frozen=True)
class NMSLConfig:
    """NMSL instance parameters (paper defaults)."""

    memory: MemoryConfig = HBM2
    window_size: Optional[int] = 1024  # None = unbounded ("No Window")
    seeds_per_pair: int = 6
    seed_entry_bytes: int = 8
    location_entry_bytes: int = 4
    #: Index filtering threshold; bounds per-seed locations and therefore
    #: the centralized-buffer FIFO depth (§5.2).
    fifo_depth_cap: int = 500
    #: When true, per-request service times come from the bank-level
    #: DRAM model (:mod:`repro.hw.dram`) instead of the fixed effective
    #: random-access interval — dispersed service times, as Ramulator
    #: would produce.
    dram_timing: bool = False


@dataclass(frozen=True)
class NMSLReport:
    """Outcome of one NMSL simulation run."""

    pairs: int
    elapsed_ns: float
    traffic_bytes: int
    max_channel_queue_depth: int
    config: NMSLConfig
    #: Busy time per memory channel, ns (service time actually spent).
    channel_busy_ns: tuple = ()

    @property
    def channel_utilization(self) -> np.ndarray:
        """Per-channel busy fraction over the run."""
        if self.elapsed_ns == 0 or not self.channel_busy_ns:
            return np.zeros(self.config.memory.channels)
        return np.asarray(self.channel_busy_ns) / self.elapsed_ns

    @property
    def mean_utilization(self) -> float:
        """Mean channel utilization — how balanced the FIFO switch keeps
        the channels (§5.2's load-balancing claim)."""
        utilization = self.channel_utilization
        return float(utilization.mean()) if utilization.size else 0.0

    @property
    def utilization_imbalance(self) -> float:
        """Max/mean utilization ratio (1.0 = perfectly balanced)."""
        utilization = self.channel_utilization
        mean = utilization.mean() if utilization.size else 0.0
        if mean == 0:
            return 1.0
        return float(utilization.max() / mean)

    @property
    def throughput_mpairs_per_s(self) -> float:
        """Sustained pair throughput in MPair/s."""
        if self.elapsed_ns == 0:
            return 0.0
        return self.pairs / self.elapsed_ns * 1e3

    @property
    def bandwidth_gbps(self) -> float:
        """Achieved memory bandwidth, GB/s."""
        if self.elapsed_ns == 0:
            return 0.0
        return self.traffic_bytes / self.elapsed_ns

    @property
    def centralized_buffer(self) -> SramModel:
        """Centralized-buffer SRAM implied by the window size."""
        window = self.config.window_size or self.pairs
        size = centralized_buffer_size(window, self.config.seeds_per_pair,
                                       self.config.fifo_depth_cap,
                                       self.config.location_entry_bytes)
        return SramModel(size_bytes=size, activity=0.4)

    @property
    def channel_fifo_bytes(self) -> int:
        """Channel input FIFO SRAM implied by the observed max depth."""
        entry = self.config.seed_entry_bytes
        return (self.max_channel_queue_depth * entry
                * self.config.memory.channels)


class NMSLSimulator:
    """Event-driven model of the NMSL datapath."""

    def __init__(self, config: Optional[NMSLConfig] = None) -> None:
        self.config = config if config is not None else NMSLConfig()

    def simulate(self, location_counts: np.ndarray) -> NMSLReport:
        """Run the model over per-seed location counts.

        ``location_counts`` has shape ``(pairs, seeds_per_pair)``; entry
        ``[i, s]`` is how many reference locations seed ``s`` of pair ``i``
        retrieves (already clipped by the index filter threshold).
        """
        config = self.config
        counts = np.asarray(location_counts)
        if counts.ndim != 2 or counts.shape[1] != config.seeds_per_pair:
            raise ValueError("location_counts must be (pairs, seeds)")
        counts = np.minimum(counts, config.fifo_depth_cap)
        pairs = counts.shape[0]
        memory = config.memory
        channels = memory.channels
        window = config.window_size

        # Deterministic uniform channel placement (hash of request id).
        request_ids = np.arange(pairs * config.seeds_per_pair,
                                dtype=np.uint64)
        channel_of = ((request_ids * np.uint64(2654435761))
                      >> np.uint64(16)) % np.uint64(channels)
        channel_of = channel_of.astype(np.int64).reshape(
            pairs, config.seeds_per_pair)

        burst_bytes = (counts * config.location_entry_bytes
                       + config.seed_entry_bytes)
        if config.dram_timing:
            from .dram import DRAM_TIMINGS, DramChannelModel
            timing = DRAM_TIMINGS.get(memory.name)
            if timing is None:
                raise ValueError(
                    f"no DRAM timing model for {memory.name}")
            model = DramChannelModel(timing, seed=1)
            service = model.sample_service_times(
                burst_bytes.reshape(-1).astype(float)).reshape(
                    burst_bytes.shape)
        else:
            service = (memory.random_access_ns
                       + burst_bytes / memory.channel_bandwidth_gbps)

        channel_free = [0.0] * channels
        channel_busy = [0.0] * channels
        channel_pending = [deque() for _ in range(channels)]
        completion = np.zeros(pairs)
        max_queue = 0
        traffic = int(burst_bytes.sum())

        for i in range(pairs):
            if window is not None and i >= window:
                issue = completion[i - window]
            else:
                issue = 0.0
            finish_max = 0.0
            for s in range(config.seeds_per_pair):
                channel = channel_of[i, s]
                pending = channel_pending[channel]
                while pending and pending[0] <= issue:
                    pending.popleft()
                occupancy = len(pending) + 1
                if occupancy > max_queue:
                    max_queue = occupancy
                start = issue if issue > channel_free[channel] \
                    else channel_free[channel]
                finish = start + service[i, s]
                channel_free[channel] = finish
                channel_busy[channel] += service[i, s]
                pending.append(finish)
                if finish > finish_max:
                    finish_max = finish
            completion[i] = finish_max

        # The run ends when every channel drains (an early pair's
        # straggler can outlive the last pair's completion).
        elapsed = float(max(max(channel_free), completion[-1])) \
            if pairs else 0.0
        return NMSLReport(pairs=pairs, elapsed_ns=elapsed,
                          traffic_bytes=traffic,
                          max_channel_queue_depth=max_queue,
                          config=config,
                          channel_busy_ns=tuple(channel_busy))


def synthetic_location_counts(rng: np.random.Generator, pairs: int,
                              mean: float = 9.6, cap: int = 500,
                              seeds_per_pair: int = 6) -> np.ndarray:
    """Draw a heavy-tailed per-seed location-count workload.

    Mimics the Observation 2 regime: most seeds hit a handful of reference
    locations, a repeat-region minority hits many (up to the index filter
    threshold).  The mixture is tuned so the mean lands near ``mean``.
    """
    shape = (pairs, seeds_per_pair)
    base = rng.geometric(0.6, size=shape)  # mostly 1-3
    repeat_mask = rng.random(shape) < 0.06
    tail = rng.pareto(1.2, size=shape) * 20.0 + 10.0
    counts = np.where(repeat_mask, tail, base)
    counts = np.clip(counts, 1, cap)
    current = counts.mean()
    if current < mean:
        # Raise the repeat tail until the target mean is met.
        deficit = mean - current
        boost_mask = rng.random(shape) < 0.02
        boost = np.where(boost_mask, deficit / 0.02, 0.0)
        counts = np.clip(counts + boost, 1, cap)
    return counts.astype(np.int64)
