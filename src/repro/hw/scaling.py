"""CMOS technology scaling (Stiller et al. factors used by the paper).

The paper synthesizes GenPairX's logic in 28nm and models SRAM at 22nm,
then scales both to 7nm for a fair comparison with GenDP (§6, Table 4
footnotes): *"scaled with power and area scaling factor 3.5 and 1.91
(20→7) from Stiller et al."*  We encode exactly those factors.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Power scaling factor applied when moving the paper's synthesized blocks
#: to the 7nm comparison node (divide by this).
POWER_SCALE_TO_7NM = 3.5

#: Area scaling factor to the 7nm comparison node (divide by this).
AREA_SCALE_TO_7NM = 1.91


@dataclass(frozen=True)
class BlockCost:
    """Area (mm^2) and power (mW) of one hardware block at one node."""

    area_mm2: float
    power_mw: float

    def scaled_to_7nm(self) -> "BlockCost":
        """Apply the paper's Stiller et al. scaling to 7nm."""
        return BlockCost(area_mm2=self.area_mm2 / AREA_SCALE_TO_7NM,
                         power_mw=self.power_mw / POWER_SCALE_TO_7NM)

    def __add__(self, other: "BlockCost") -> "BlockCost":
        return BlockCost(self.area_mm2 + other.area_mm2,
                         self.power_mw + other.power_mw)

    def times(self, count: int) -> "BlockCost":
        """Cost of ``count`` replicated instances."""
        return BlockCost(self.area_mm2 * count, self.power_mw * count)
