"""CACTI-like SRAM area/power model.

The paper models all SRAM (NMSL centralized buffer, channel FIFOs, module
FIFOs) with CACTI 7.0 at 22nm and scales to 7nm (Table 4 footnote b).  We
encode a compact surrogate calibrated against the two SRAM rows of
Table 4:

* Centralized Buffer, 11.74 MB -> 6.13 mm^2, 6.09 mW (large, low
  per-byte activity: leakage-dominated);
* FIFOs, 190 KB -> 0.091 mm^2, 3.36 mW (small, continuously clocked
  dual-port FIFOs: dynamic-dominated).

The surrogate is ``area = AREA_PER_MB * size`` and
``power = LEAKAGE_PER_MB * size + ACTIVITY_POWER * activity`` where
``activity`` is the average number of port accesses per clock cycle.
Both Table 4 rows are reproduced to within a few percent (see the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

#: mm^2 per MB at the 7nm comparison node (derived from 6.13 / 11.74).
AREA_PER_MB_MM2 = 0.522

#: Leakage power per MB, mW (7nm-scaled).
LEAKAGE_PER_MB_MW = 0.50

#: Dynamic power per unit port activity (one access per cycle at 2 GHz),
#: mW.  Calibrated from the FIFOs row: 3.36 mW at ~190 KB with one
#: continuously active port: 3.36 - 0.19 * 0.5 = 3.27.
ACTIVITY_POWER_MW = 3.27

MB = float(1 << 20)


@dataclass(frozen=True)
class SramModel:
    """One SRAM macro (or a pool of macros treated in aggregate)."""

    size_bytes: int
    #: Average port accesses per clock cycle across the pool.
    activity: float = 0.0

    @property
    def size_mb(self) -> float:
        return self.size_bytes / MB

    @property
    def area_mm2(self) -> float:
        """Area at the 7nm comparison node."""
        return AREA_PER_MB_MM2 * self.size_mb

    @property
    def power_mw(self) -> float:
        """Power at the 7nm comparison node."""
        return (LEAKAGE_PER_MB_MW * self.size_mb
                + ACTIVITY_POWER_MW * self.activity)


def centralized_buffer_size(window_size: int, seeds_per_pair: int = 6,
                            fifo_depth: int = 500,
                            entry_bytes: int = 4) -> int:
    """Size of the NMSL centralized buffer in bytes (§5.2).

    One FIFO per in-flight seed (window x seeds_per_pair FIFOs), each deep
    enough for the index-filter-threshold worth of locations.  With the
    paper's parameters (window 1024, 6 seeds, depth 500, 4-byte entries)
    this is ~11.7 MB, matching Table 4's 11.74 MB.
    """
    return window_size * seeds_per_pair * fifo_depth * entry_bytes
