"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per process (:func:`get_registry`) holds
every metric the instrumented layers record — pipeline stage timings,
executor queue waits, per-engine run counters, daemon request
latencies.  Four properties drive the design:

* **Fork safety.**  Metric *objects* are plain Python ints/floats in
  plain dicts — no file descriptors, nothing per-registry the forked
  :func:`~repro.core.pipeline._stream_worker` children could corrupt
  or deadlock on.  Workers record into a *fresh per-chunk registry*
  and ship :meth:`MetricsRegistry.snapshot` dictionaries back through
  the existing ordered-merge path; the parent folds them with
  :meth:`MetricsRegistry.merge_snapshot` in chunk order, so counter
  folds are bit-identical between ``workers=1`` and ``workers=N``.
* **Thread safety.**  The daemon records from one thread per
  connection, so every mutation — counter increments, histogram
  observes, get-or-create dict inserts, snapshot/merge/reset — runs
  under one *module-level* lock (:data:`_REGISTRY_LOCK`).  Module
  level, not per-registry, keeps the fork story intact: constructing
  a ``MetricsRegistry`` never constructs a threading primitive in
  worker-reachable code (the fork-safety family's RPL101), and the
  lock is re-armed in forked children via ``os.register_at_fork`` so
  a parent thread holding it at fork time cannot deadlock the child.
  Under ``REPRO_SANITIZE=1`` the lock is a
  :class:`~repro.util.sync.SanitizedLock`, which turns unguarded or
  misordered access into hard errors in the concurrency stress tests.
* **Deterministic merging.**  Histogram bucket bounds are *fixed*
  (log-spaced, :data:`BUCKET_BOUNDS`) rather than adaptive, so two
  snapshots merge by elementwise addition — no re-bucketing, no
  order dependence.
* **Near-zero overhead when disabled.**  :func:`set_metrics_enabled`
  flips one module-level flag; instrumented hot paths check
  ``registry.enabled`` once per *chunk* (not per pair) and skip all
  clock reads when off.  The throughput bench gates the enabled path
  at within 3% of the disabled one.

Values are recorded in seconds; the fixed buckets span 10µs to 50s,
which covers everything from a single chunk map to a whole-file run.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from bisect import bisect_left
from typing import Dict, Optional, Union

from ..util.sync import maybe_sanitize_lock, on_sanitize_toggle

#: Fixed histogram bucket upper bounds (seconds): 1/2.5/5 per decade
#: from 1e-5 up through 5e1, plus an implicit overflow bucket.  Fixed
#: bounds make merges deterministic elementwise additions.
BUCKET_BOUNDS = tuple(
    mantissa * 10.0 ** exponent
    for exponent in range(-5, 2)
    for mantissa in (1.0, 2.5, 5.0))

#: Process-wide enable flag.  Consulted through
#: :attr:`MetricsRegistry.enabled` so instrumented code holds no extra
#: global reference; forked workers inherit the parent's value.
_ENABLED = True


def set_metrics_enabled(enabled: bool) -> bool:
    """Turn metrics recording on/off process-wide; returns the
    previous value (restore it in benches/tests)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def metrics_enabled() -> bool:
    """Whether metrics recording is currently enabled."""
    return _ENABLED


#: The one lock guarding every metric mutation in this process.
#: Module-level by design (see the module docstring): per-registry
#: locks would put a threading-primitive construction on the forked
#: worker's path, and a lock captured mid-acquire at fork time would
#: deadlock the child — so the child re-arms a fresh one instead.
_REGISTRY_LOCK = maybe_sanitize_lock("metrics_registry")


def _rearm_registry_lock() -> None:
    global _REGISTRY_LOCK
    _REGISTRY_LOCK = maybe_sanitize_lock("metrics_registry")


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_rearm_registry_lock)
on_sanitize_toggle(_rearm_registry_lock)


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        with _REGISTRY_LOCK:
            self.value += amount


class Gauge:
    """A last-value-wins float (worker count, queue depth, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        with _REGISTRY_LOCK:
            self.value = float(value)


class Histogram:
    """A fixed-bucket latency histogram (counts per bucket + summary).

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot
    is the overflow bucket.  ``sum``/``count``/``min``/``max`` track
    the exact summary, so means are not bucket-quantized.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds=BUCKET_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        with _REGISTRY_LOCK:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts (the bucket
        upper bound the q-th observation falls in; the exact ``max``
        for the overflow bucket)."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= target and bucket:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Metrics are created on first use and reused afterwards; names are
    dotted paths (``engine.genpair.run_s``, ``executor.queue_wait_s``)
    so renderers can group by prefix.  The process-wide instance lives
    behind :func:`get_registry`; workers build private per-chunk
    instances and ship snapshots.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    @property
    def enabled(self) -> bool:
        """The process-wide enable flag (one check per chunk, not one
        per metric, in instrumented hot paths)."""
        return _ENABLED

    # -- metric accessors ----------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with _REGISTRY_LOCK:
                metric = self._counters.get(name)
                if metric is None:
                    metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with _REGISTRY_LOCK:
                metric = self._gauges.get(name)
                if metric is None:
                    metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with _REGISTRY_LOCK:
                metric = self._histograms.get(name)
                if metric is None:
                    metric = self._histograms[name] = Histogram()
        return metric

    # -- snapshot / merge / reset --------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """Every metric as plain JSON types (the wire/fold form),
        captured atomically with respect to concurrent recording."""
        with _REGISTRY_LOCK:
            histograms = {}
            for name, hist in self._histograms.items():
                histograms[name] = {
                    "bounds": list(hist.bounds),
                    "counts": list(hist.counts),
                    "count": hist.count,
                    "sum": hist.sum,
                    "min": hist.min if hist.count else 0.0,
                    "max": hist.max if hist.count else 0.0,
                }
            return {
                "counters": {name: c.value
                             for name, c in self._counters.items()},
                "gauges": {name: g.value
                           for name, g in self._gauges.items()},
                "histograms": histograms,
            }

    def merge_snapshot(self, snapshot: Dict[str, Dict]) -> None:
        """Fold a :meth:`snapshot` dictionary into the live metrics.

        Counters and histogram buckets add elementwise (fixed bounds
        make this exact); gauges are last-write-wins.  Folding worker
        snapshots in chunk order keeps counter totals bit-identical
        to a single-process run.

        The whole fold is one critical section.  The get-or-create and
        add steps are inlined rather than routed through
        :meth:`counter`/:meth:`Counter.inc` because those take the
        (non-reentrant) registry lock themselves.
        """
        with _REGISTRY_LOCK:
            for name, value in snapshot.get("counters", {}).items():
                metric = self._counters.get(name)
                if metric is None:
                    metric = self._counters[name] = Counter()
                metric.value += value
            for name, value in snapshot.get("gauges", {}).items():
                gauge = self._gauges.get(name)
                if gauge is None:
                    gauge = self._gauges[name] = Gauge()
                gauge.value = float(value)
            for name, data in snapshot.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram()
                if tuple(data["bounds"]) != hist.bounds:
                    raise ValueError(
                        f"histogram {name!r}: snapshot bucket bounds "
                        "do not match this registry's (fixed bounds "
                        "are what make merges deterministic)")
                counts = data["counts"]
                for index, bucket in enumerate(counts):
                    hist.counts[index] += bucket
                if data["count"]:
                    hist.count += data["count"]
                    hist.sum += data["sum"]
                    hist.min = min(hist.min, data["min"])
                    hist.max = max(hist.max, data["max"])

    def reset(self) -> None:
        """Drop every metric (tests and long-lived daemons)."""
        with _REGISTRY_LOCK:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry every instrumented layer records into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _REGISTRY


def host_metadata() -> Dict[str, Union[str, int, None]]:
    """The host facts that make recorded numbers comparable across
    machines (stamped into ``BENCH_<n>.json`` and the daemon's
    ``stats`` reply)."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def write_metrics_json(path, registry: Optional[MetricsRegistry] = None
                       ) -> None:
    """Dump ``{"host": ..., "metrics": ...}`` as JSON to ``path`` (the
    ``repro map --metrics-json`` offline-analysis artifact)."""
    registry = registry if registry is not None else get_registry()
    payload = {"host": host_metadata(), "metrics": registry.snapshot()}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
