"""``repro.obs`` — metrics, span tracing, and live introspection.

The observability floor under the whole system: one process-wide
:class:`MetricsRegistry` (counters, gauges, fixed-bucket latency
histograms) that every layer records into, plus lightweight
:func:`span` tracing with a shared no-op when inactive.

What is instrumented where:

* :class:`~repro.core.pipeline.GenPairPipeline` — per-chunk
  ``pipeline.seed_query_s`` / ``pipeline.filter_align_s`` histograms
  and ``pipeline.chunks`` / ``pipeline.pairs`` counters (recorded
  once per chunk, so the hot path stays within 3% of uninstrumented —
  gated in ``benchmarks/bench_batch_throughput.py``);
* :class:`~repro.core.pipeline.StreamExecutor` — worker-side
  ``executor.chunk_s`` / ``executor.w<N>.chunk_s`` /
  ``executor.queue_wait_s`` histograms recorded with fork-safe plain
  counters and folded through the ordered-merge path, parent-side
  ``executor.dispatch_depth`` / ``executor.run_s`` and the
  ``executor.workers`` gauge;
* every engine — ``engine.<name>.runs``, ``engine.<name>.run_s``, and
  the engine's stats counters folded as ``engine.<name>.<field>``;
* the output formats — ``output.<fmt>.records`` /
  ``output.<fmt>.wire_lines`` / ``output.<fmt>.write_s``;
* the serve daemon — ``serve.requests.<op>`` / ``serve.errors``
  counters and ``serve.request_s.<op>`` /
  ``serve.map_s.<engine>.<format>`` histograms.

Surfaces: the daemon's expanded ``stats`` reply (full registry
snapshot + host metadata), ``repro stats`` / ``repro top`` client
views, ``repro map --metrics-json PATH``, and the per-request
``trace`` flag returning a span breakdown.
"""

from __future__ import annotations

from .metrics import (BUCKET_BOUNDS, Counter, Gauge, Histogram,
                      MetricsRegistry, get_registry, host_metadata,
                      metrics_enabled, set_metrics_enabled,
                      write_metrics_json)
from .render import (format_seconds, render_metrics, render_top,
                     snapshot_quantile, worker_utilization)
from .trace import (SpanRecord, Tracer, active_tracer, capture_trace,
                    span)

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "active_tracer",
    "capture_trace",
    "format_seconds",
    "get_registry",
    "host_metadata",
    "metrics_enabled",
    "render_metrics",
    "render_top",
    "set_metrics_enabled",
    "snapshot_quantile",
    "span",
    "worker_utilization",
    "write_metrics_json",
]
