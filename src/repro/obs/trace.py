"""Lightweight span tracing: ``with span("seed.query_batch"): ...``.

A span names one timed region of the dataflow.  When no tracer is
active — the normal case — :func:`span` returns one *shared* no-op
context manager, so an instrumented hot path pays a dict-free global
read and two empty method calls per region and nothing else.  When a
tracer is active (:func:`capture_trace`, used by the daemon's
``trace`` request flag), every span records ``(name, depth,
started_s, elapsed_s)`` into a flat list, nesting tracked by depth.

Tracing is deliberately per-thread-unaware: the daemon captures under
its ``_map_lock``, where exactly one request maps at a time, and the
offline CLI is single-threaded.  Spans inside *forked worker
processes* are not captured — the pooled GenPair engine's per-chunk
stage breakdown arrives as metrics histograms instead (see
:mod:`repro.obs.metrics`).

Span-name catalog (what instrumented layers emit today):

======================  ================================================
``serve.map``           one daemon map request's mapping phase
``serve.render``        one daemon map request's output rendering
``seed.query_batch``    one chunk's batched seeding + SeedMap probe
``pair.filter_align``   one chunk's per-pair filtering + alignment
======================  ================================================
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Union


@dataclass
class SpanRecord:
    """One completed span: what ran, how nested, and for how long."""

    name: str
    depth: int
    started_s: float
    elapsed_s: float

    def to_dict(self) -> Dict[str, Union[str, int, float]]:
        return {"name": self.name, "depth": self.depth,
                "started_s": round(self.started_s, 6),
                "elapsed_s": round(self.elapsed_s, 6)}


class _NoopSpan:
    """The shared do-nothing span (tracer inactive)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: One instance for every untraced span — no allocation on the hot path.
_NOOP = _NoopSpan()


class _Span:
    """A recording span: times itself and appends to its tracer."""

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Span":
        self._tracer._depth += 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        tracer = self._tracer
        tracer._depth -= 1
        tracer.records.append(SpanRecord(
            name=self._name, depth=tracer._depth,
            started_s=self._start - tracer._origin,
            elapsed_s=elapsed))
        return None


class Tracer:
    """Collects :class:`SpanRecord` entries while active.

    Spans append on *exit*, so a parent span follows its children in
    :attr:`records`; ``started_s`` (relative to tracer start) restores
    chronological order for rendering.
    """

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self._depth = 0
        self._origin = time.perf_counter()

    def to_dicts(self) -> List[Dict[str, Union[str, int, float]]]:
        """The captured spans as JSON-ready dicts, in start order."""
        ordered = sorted(self.records, key=lambda r: r.started_s)
        return [record.to_dict() for record in ordered]


#: The active tracer, or ``None`` (the no-op fast path).
_TRACER: Optional[Tracer] = None


def span(name: str):
    """A context manager timing one named region.

    Returns the shared no-op instance when no tracer is active — the
    near-zero-overhead property the pipeline hot path relies on.
    """
    tracer = _TRACER
    if tracer is None:
        return _NOOP
    return _Span(tracer, name)


def active_tracer() -> Optional[Tracer]:
    """The currently installed tracer, if any."""
    return _TRACER


@contextmanager
def capture_trace() -> Iterator[Tracer]:
    """Activate a fresh :class:`Tracer` for the ``with`` body.

    Nested captures stack (the previous tracer is restored on exit).
    The daemon wraps one request's mapping + rendering in this to
    answer the ``trace`` request flag.
    """
    global _TRACER
    tracer = Tracer()
    previous = _TRACER
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous
