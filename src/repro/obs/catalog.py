"""The declared metric catalog: every name the registry may record.

PR 7 scattered dozens of string-literal metric names across the
pipeline, executor, engines, writers, and daemon, with nothing keeping
the record sites, the ``repro stats``/``top`` render tables, and the
README catalog in agreement.  This module is now the single source of
truth: a **static** metric is a fixed dotted name; a **family** is a
template whose ``*`` segments are filled at run time (worker numbers,
engine names, output formats, request ops).  The ``repro lint``
obs-contract checker (RPL901–RPL903) verifies, from the AST, that

* every literal name at a ``counter``/``gauge``/``histogram`` call
  site is declared here with the matching kind,
* every dynamic (f-string) name matches a declared family template,
* the renderers in :mod:`repro.obs.render` and the README's metric
  table reference only declared names — catalog drift is a finding.

Both tables are plain literals so the checker can read them without
importing this module (fixture trees never execute).
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

#: Fixed metric names: ``name -> (kind, description)``.
STATIC_METRICS: Dict[str, Tuple[str, str]] = {
    "pipeline.chunks": (
        "counter", "chunks through the batched pipeline engine"),
    "pipeline.pairs": (
        "counter", "pairs through the batched pipeline engine"),
    "pipeline.seed_query_s": (
        "histogram", "per-chunk seed hash+probe stage seconds"),
    "pipeline.filter_align_s": (
        "histogram", "per-chunk filter+align stage seconds"),
    "executor.chunks": (
        "counter", "chunks mapped by pool workers"),
    "executor.chunk_s": (
        "histogram", "worker-side per-chunk map seconds"),
    "executor.queue_wait_s": (
        "histogram", "task-queue wait before a worker picked a chunk"),
    "executor.dispatch_depth": (
        "histogram", "in-flight chunks after each submit"),
    "executor.run_s": (
        "histogram", "wall seconds per executor map() run"),
    "executor.workers": (
        "gauge", "worker processes in the live pool"),
    "serve.errors": (
        "counter", "daemon requests that raised"),
    "serve.busy": (
        "counter", "requests refused under load (queue full or "
                   "client limit)"),
    "serve.timeouts": (
        "counter", "requests whose deadline expired"),
    "serve.queue_depth": (
        "gauge", "mapping requests waiting in the scheduler queue"),
    "serve.queue_wait_s": (
        "histogram", "queue wait before the scheduler ran a request"),
    "serve.batch_requests": (
        "histogram", "requests coalesced into each engine run"),
    "serve.batch_items": (
        "histogram", "workload items (pairs/reads) per coalesced run"),
}

#: Dynamic name families: ``(template, kind, description)``.  A ``*``
#: stands for exactly the run-time-interpolated span of the name
#: (worker number, engine, format, stats field, request op).  Order
#: matters: the first matching template wins, so the specific
#: ``engine.*.runs``/``run_s`` rows precede the catch-all stats row.
METRIC_FAMILIES: Tuple[Tuple[str, str, str], ...] = (
    ("executor.w*.chunk_s", "histogram",
     "per-worker per-chunk map seconds"),
    ("engine.*.runs", "counter", "completed runs per engine"),
    ("engine.*.run_s", "histogram", "wall seconds per engine run"),
    ("engine.*.*", "counter",
     "every engine stats field, folded once per run"),
    ("output.*.records", "counter", "records written per format"),
    ("output.*.wire_lines", "counter",
     "wire lines rendered per format"),
    ("output.*.write_s", "histogram", "file-write seconds per format"),
    ("serve.requests.*", "counter", "daemon requests per op"),
    ("serve.request_s.*", "histogram",
     "daemon request seconds per op"),
    ("serve.map_s.*.*", "histogram",
     "daemon map seconds per engine and format"),
)


def _template_regex(template: str) -> "re.Pattern[str]":
    pattern = "".join("[^.]+" if part == "*" else re.escape(part)
                      for part in re.split(r"(\*)", template))
    return re.compile(f"^{pattern}$")


_FAMILY_REGEXES = tuple(
    (template, kind, _template_regex(template))
    for template, kind, _ in METRIC_FAMILIES)


def registered_kind(name: str) -> Optional[str]:
    """The declared kind for a concrete metric name (``None`` when the
    name belongs to no static metric and no family)."""
    static = STATIC_METRICS.get(name)
    if static is not None:
        return static[0]
    for _, kind, regex in _FAMILY_REGEXES:
        if regex.match(name):
            return kind
    return None


def family_kind(template: str) -> Optional[str]:
    """The declared kind for an exact family template (the form a
    dynamic f-string name reduces to), or ``None``."""
    for declared, kind, _ in METRIC_FAMILIES:
        if declared == template:
            return kind
    return None


def catalog_entries() -> Dict[str, str]:
    """Every declared name/template -> kind (the README drift check's
    reference set; families use ``*`` placeholders)."""
    entries = {name: kind
               for name, (kind, _) in STATIC_METRICS.items()}
    for template, kind, _ in METRIC_FAMILIES:
        entries[template] = kind
    return entries
