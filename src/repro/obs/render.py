"""Text rendering for metrics snapshots: ``repro stats`` / ``repro top``.

Everything here consumes the plain-dict :meth:`MetricsRegistry.snapshot
<repro.obs.metrics.MetricsRegistry.snapshot>` form (what the daemon's
``stats`` reply carries over the wire), never live metric objects, so
the client renders exactly what the server reported.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..util.tables import format_table

#: Quantiles the histogram tables report.
_QUANTILES = (0.5, 0.9, 0.99)


def format_seconds(value: float) -> str:
    """A compact human duration (``870us``, ``12.4ms``, ``1.73s``)."""
    if value <= 0:
        return "0"
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.2f}s"


def snapshot_quantile(hist: Dict, q: float) -> float:
    """Approximate quantile of a snapshot histogram dict: the bucket
    upper bound the q-th observation falls in (exact ``max`` for the
    overflow bucket)."""
    count = hist.get("count", 0)
    if not count:
        return 0.0
    bounds = hist["bounds"]
    target = q * count
    seen = 0
    for index, bucket in enumerate(hist["counts"]):
        seen += bucket
        if seen >= target and bucket:
            if index < len(bounds):
                return bounds[index]
            return hist["max"]
    return hist["max"]


def _histogram_rows(histograms: Dict[str, Dict],
                    prefix: str = "") -> List[tuple]:
    rows = []
    for name in sorted(histograms):
        if not name.startswith(prefix):
            continue
        hist = histograms[name]
        count = hist.get("count", 0)
        mean = hist["sum"] / count if count else 0.0
        rows.append((name, f"{count:,}", format_seconds(mean))
                    + tuple(format_seconds(snapshot_quantile(hist, q))
                            for q in _QUANTILES)
                    + (format_seconds(hist.get("max", 0.0)),))
    return rows


def render_metrics(snapshot: Dict[str, Dict]) -> List[str]:
    """A registry snapshot as report text: counters, gauges, then the
    latency-histogram summary table."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append(format_table(
            ("counter", "value"),
            [(name, f"{counters[name]:,}")
             for name in sorted(counters)],
            title="Counters"))
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append(format_table(
            ("gauge", "value"),
            [(name, f"{gauges[name]:g}") for name in sorted(gauges)],
            title="Gauges"))
    histograms = snapshot.get("histograms", {})
    rows = _histogram_rows(histograms)
    if rows:
        lines.append(format_table(
            ("histogram", "count", "mean", "p50", "p90", "p99", "max"),
            rows, title="Latency histograms"))
    if not lines:
        lines.append("(no metrics recorded)")
    return lines


def worker_utilization(snapshot: Dict[str, Dict]
                       ) -> Optional[Dict[str, float]]:
    """Per-worker busy fraction from the executor histograms.

    Busy seconds come from each worker's ``executor.w<N>.chunk_s``
    sum; the denominator is the total ``executor.run_s`` (wall time
    the pool spent inside ``map()`` runs).  ``None`` when no pooled
    run has been recorded yet.
    """
    histograms = snapshot.get("histograms", {})
    run = histograms.get("executor.run_s")
    if run is None or not run.get("count"):
        return None
    wall = run["sum"]
    if wall <= 0:
        return None
    utilization = {}
    for name in sorted(histograms):
        if name.startswith("executor.w") \
                and name.endswith(".chunk_s"):
            worker = name[len("executor."):-len(".chunk_s")]
            utilization[worker] = min(
                1.0, histograms[name]["sum"] / wall)
    return utilization or None


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_top(reply: Dict) -> List[str]:
    """One ``repro top`` frame from a daemon ``stats`` reply.

    Expects the expanded reply shape: ``server`` (request totals),
    ``engines`` (cumulative per-engine counters), ``metrics`` (the
    registry snapshot), and ``host``.
    """
    lines: List[str] = []
    server = reply.get("server", {})
    host = reply.get("host", {})
    lines.append(
        f"repro top — uptime {server.get('uptime_s', 0):.1f}s | "
        f"requests {server.get('requests', 0):,} | errors "
        f"{server.get('errors', 0)} | pairs "
        f"{server.get('pairs_mapped', 0):,}")
    if host:
        lines.append(
            f"host: python {host.get('python', '?')} on "
            f"{host.get('machine', '?')} "
            f"({host.get('cpu_count', '?')} CPUs)")
    if "active_connections" in server:
        lines.append(
            f"clients: {server.get('active_connections', 0)} active "
            f"of {server.get('connections', 0):,} total")
    scheduler = reply.get("scheduler")
    if scheduler:
        lines.append(
            f"scheduler: queue {scheduler.get('queue_depth', 0)}"
            f"/{scheduler.get('max_queue', 0)} | batches "
            f"{scheduler.get('batches', 0):,} | coalesced requests "
            f"{scheduler.get('coalesced_requests', 0):,} (max batch "
            f"{scheduler.get('max_batch_requests', 0)}) | busy "
            f"{scheduler.get('busy_rejected', 0)} | timeouts "
            f"{scheduler.get('timeouts', 0)}")
    by_op = server.get("by_op", {})
    if by_op:
        lines.append("ops: " + "  ".join(
            f"{op}={count:,}" for op, count in sorted(by_op.items())))
    snapshot = reply.get("metrics", {})
    engines = reply.get("engines", {})
    if engines:
        rows = []
        histograms = snapshot.get("histograms", {})
        for name in sorted(engines):
            stats = engines[name]
            units = stats.get("pairs_total", stats.get(
                "pairs_seen", stats.get("reads_total", 0)))
            run = histograms.get(f"engine.{name}.run_s", {})
            count = run.get("count", 0)
            mean = run["sum"] / count if count else 0.0
            rows.append((name, f"{count:,}", f"{units:,}",
                         format_seconds(mean),
                         format_seconds(
                             snapshot_quantile(run, 0.99)
                             if count else 0.0)))
        lines.append(format_table(
            ("engine", "runs", "items", "mean run", "p99 run"),
            rows, title="Engines (cumulative)"))
    # The batch-size histograms (serve.batch_requests /
    # serve.batch_items) count requests and items, not seconds; they
    # are summarized by the scheduler line above, not rendered as
    # latencies.
    request_rows = [
        row for row in _histogram_rows(snapshot.get("histograms", {}),
                                       prefix="serve.")
        if not row[0].startswith("serve.batch_")]
    if request_rows:
        lines.append(format_table(
            ("histogram", "count", "mean", "p50", "p90", "p99", "max"),
            request_rows, title="Request latency"))
    utilization = worker_utilization(snapshot)
    if utilization is not None:
        util_lines = ["Worker utilization"]
        for worker in sorted(utilization):
            fraction = utilization[worker]
            util_lines.append(
                f"  {worker}  [{_bar(fraction)}] {fraction * 100:5.1f}%")
        lines.append("\n".join(util_lines))
    return lines
