"""Command-line interface: thin shims over the :mod:`repro.api` facade.

Subcommands mirror a real read-mapping toolchain:

* ``simulate``      — generate a synthetic reference (FASTA), a diploid
  donor truth set (VCF), and paired-end reads (FASTQ x2);
* ``index build``   — precompute the SeedMap + encoded reference into a
  persistent memory-mapped index file (the ``bowtie2-build`` split);
* ``index inspect`` — print an index's fingerprint, tables, checksums;
* ``map``           — map FASTQ files through the engine-polymorphic
  :class:`repro.api.Mapper` facade and write SAM/PAF/JSONL;
  ``--engine`` selects the mapping engine (``genpair`` paired-end
  default, ``mm2`` baseline, ``longread`` single-read), ``--format``
  the output writer, ``--call-variants out.vcf`` chains variant
  calling as a post-stage; reads stream through in O(batch) memory,
  the batched engine is on by default (``--batch-size``),
  ``--workers N`` streams genpair chunks through a persistent pool of
  forked worker processes, ``--index`` serves from a prebuilt index,
  and ``--filter-chain``/``--aligner`` select registry stages
  declaratively;
* ``map-long``      — single-read long-read shim: ``map`` pinned to
  ``--engine longread`` with one ``--reads`` FASTQ;
* ``serve``         — run the long-lived mapping daemon: the index and
  the worker pool stay warm, and mapping requests arrive as
  newline-delimited JSON over a UNIX socket;
* ``client``        — talk to a running daemon (``ping`` / ``map`` /
  ``stats`` / ``shutdown``);
* ``stats``         — one-shot observability snapshot from a running
  daemon: server totals, per-engine counters, and the full metrics
  registry (counters / gauges / latency histograms) rendered as
  tables (``--json`` for the raw reply);
* ``top``           — live daemon dashboard: engines, request
  latencies, and worker utilization, refreshed every ``--interval``
  seconds until interrupted;
* ``call``          — pile up a SAM file and call variants to VCF;
* ``design``        — compose the GenPairX + GenDP hardware design and
  print the Table 3/4/5-style report.

Example::

    python -m repro.cli simulate --out demo --pairs 500
    python -m repro.cli index build --reference demo_ref.fa \
        --out demo.rpix
    python -m repro.cli map --index demo.rpix \
        --reads1 demo_1.fq --reads2 demo_2.fq --out demo.sam
    python -m repro.cli serve --index demo.rpix --workers 4 &
    python -m repro.cli client map --socket demo.rpix.sock \
        --reads1 demo_1.fq --reads2 demo_2.fq --out demo.sam
    python -m repro.cli client shutdown --socket demo.rpix.sock
    python -m repro.cli call --reference demo_ref.fa --sam demo.sam \
        --out demo.vcf
    python -m repro.cli design --memory HBM2
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from . import __version__
from .util.diagnostics import note, set_quiet


def _available_cpus() -> int:
    """CPUs this process may actually use: the scheduling affinity mask
    where available (respects cgroup/taskset limits in containers),
    falling back to the raw core count."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0)) or 1
    return os.cpu_count() or 1


def _int_arg(flag: str, minimum: int, note: str = ""):
    """Argparse type: an integer bounded below, with a clear error
    (``--workers`` must be positive, ``--batch-size`` non-negative)."""
    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected an integer, got {text!r}")
        if value < minimum:
            raise argparse.ArgumentTypeError(
                f"{flag} must be >= {minimum}{note}, got {value}")
        return value
    return parse


def _float_arg(flag: str, above: float, note: str = ""):
    """Argparse type: a float strictly above a bound, with a clear
    error (``--request-timeout`` must be positive)."""
    def parse(text: str) -> float:
        try:
            value = float(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected a number, got {text!r}")
        if not value > above:
            raise argparse.ArgumentTypeError(
                f"{flag} must be > {above:g}{note}, got {text}")
        return value
    return parse


def _tcp_arg(text: str):
    """Argparse type for ``--tcp``: a validated HOST:PORT address."""
    from .serve.address import AddressError, require_tcp

    try:
        return require_tcp(text)
    except AddressError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .genome import (ErrorModel, ReadSimulator, generate_reference,
                         plant_variants, write_fasta, write_fastq)
    from .variants import write_vcf

    rng = np.random.default_rng(args.seed)
    lengths = tuple(int(x) for x in args.chromosomes.split(","))
    reference = generate_reference(rng, lengths)
    donor = plant_variants(rng, reference)
    error_model = (ErrorModel.giab_like() if args.profile == "giab"
                   else ErrorModel.mason_default(args.error_rate))
    simulator = ReadSimulator(reference, donor=donor,
                              error_model=error_model, seed=args.seed + 1)
    pairs = simulator.simulate_pairs(args.pairs)

    write_fasta(f"{args.out}_ref.fa", reference)
    write_vcf(f"{args.out}_truth.vcf", donor.truth, reference=reference)
    write_fastq(f"{args.out}_1.fq",
                ((pair.read1.name, pair.read1.codes) for pair in pairs))
    write_fastq(f"{args.out}_2.fq",
                ((pair.read2.name, pair.read2.codes) for pair in pairs))
    print(f"wrote {args.out}_ref.fa ({reference.total_length:,} bp), "
          f"{args.out}_truth.vcf ({len(donor.truth)} variants), "
          f"{args.out}_1.fq / {args.out}_2.fq ({args.pairs} pairs)")
    return 0


def _build_mapper(args: argparse.Namespace):
    """Construct the :class:`repro.api.Mapper` the ``map`` and
    ``serve`` shims share, from their common flags.

    Returns ``(mapper, None)`` or ``(None, exit_code)`` with the error
    already printed.
    """
    from .api import Mapper, MappingConfigError, RegistryError
    from .index import IndexFormatError

    if (args.index is None) == (args.reference is None):
        print(f"error: {args.command} needs exactly one of "
              "--reference or --index", file=sys.stderr)
        return None, 2
    engine = getattr(args, "engine", "genpair")
    if engine != "genpair" and args.workers > 1:
        note(f"the worker pool serves the genpair engine; "
             f"--engine {engine} maps in-process (the pool still "
             "serves genpair requests of a daemon)")
    if args.batch_size > 0 and args.workers > 1:
        cpus = _available_cpus()
        if args.workers > cpus:
            note(f"--workers {args.workers} exceeds the {cpus} "
                 f"available CPU(s); capping at {cpus}")
            args.workers = cpus
    elif args.workers > 1:
        note("--workers requires the batched engine; "
             "ignored with --batch-size 0")
        args.workers = 1
    overrides = dict(delta=args.delta, batch_size=args.batch_size,
                     workers=args.workers,
                     full_fallback=not args.no_fallback,
                     filter_chain=args.filter_chain,
                     aligner=args.aligner,
                     engine=engine,
                     output_format=getattr(args, "format", "sam"))
    # The fingerprint gate: an explicit --filter-threshold must match
    # what an index was built with (from_fingerprint rejects a
    # conflict); against FASTA it configures the in-process build.
    if args.filter_threshold is not None:
        overrides["filter_threshold"] = args.filter_threshold
    try:
        if args.index is not None:
            mapper = Mapper.from_index(
                args.index, verify_index=not args.no_verify,
                **overrides)
        else:
            mapper = Mapper.from_reference(args.reference, **overrides)
    except (IndexFormatError, MappingConfigError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None, 1
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None, 2
    return mapper, None


def _print_map_report(stats, count: int, out: str) -> None:
    print(f"mapped {stats.pairs_total} pairs -> {count} records "
          f"({out})")
    print(f"  light-aligned {stats.light_aligned_pct:.1f}% | "
          f"DP-at-candidates {stats.light_fallback_pct:.1f}% | "
          f"full fallback "
          f"{stats.seedmap_fallback_pct + stats.filter_fallback_pct:.1f}%"
          f" | unmapped {stats.unmapped}")


def _print_engine_report(engine: str, stats, count: int,
                         out: str) -> None:
    """Per-engine run summary; ``stats`` may be the engine's dataclass
    or the daemon's plain-dict form of it."""
    if isinstance(stats, dict):
        get = stats.get
    else:
        def get(name, default=0):
            return getattr(stats, name, default)
    if engine == "mm2":
        print(f"mapped {get('pairs_seen')} pairs -> {count} records "
              f"({out})")
        print(f"  proper pairs {get('pairs_proper')} | mate rescues "
              f"{get('mate_rescues')} | reads mapped "
              f"{get('reads_mapped')}")
    elif engine == "longread":
        print(f"mapped {get('reads_total')} long reads -> {count} "
              f"records ({out})")
        print(f"  placed {get('mapped')} | pseudo-pairs "
              f"{get('pseudo_pairs')} | DP cells {get('dp_cells'):,}")
    else:  # genpair
        if isinstance(stats, dict):
            from .core import PipelineStats

            stats = PipelineStats(**stats)
        _print_map_report(stats, count, out)


def _map_input(args: argparse.Namespace):
    """The FASTQ paths ``map`` should feed its engine, validated for
    the engine's input arity; ``(reads1, reads2)`` or ``None`` with the
    error already printed."""
    single = getattr(args, "reads", None)
    engine = getattr(args, "engine", "genpair")
    if engine == "longread":
        if single is None:
            print("error: --engine longread maps a single FASTQ; "
                  "pass --reads (not --reads1/--reads2)",
                  file=sys.stderr)
            return None
        if args.reads1 is not None or args.reads2 is not None:
            print("error: --reads and --reads1/--reads2 are mutually "
                  "exclusive", file=sys.stderr)
            return None
        return single, None
    if single is not None:
        print(f"error: --reads is for single-read engines; --engine "
              f"{engine} needs --reads1 and --reads2", file=sys.stderr)
        return None
    if args.reads1 is None or args.reads2 is None:
        print(f"error: --engine {engine} needs both --reads1 and "
              "--reads2", file=sys.stderr)
        return None
    return args.reads1, args.reads2


def _cmd_map(args: argparse.Namespace) -> int:
    from .api import MappingConfigError, RegistryError
    from .genome import FastaError

    paths = _map_input(args)
    if paths is None:
        return 2
    if args.out is None:
        args.out = f"out.{args.format}"
    mapper, code = _build_mapper(args)
    if mapper is None:
        return code
    with mapper:
        try:
            results = mapper.map_file(paths[0], paths[1])
            if args.call_variants:
                count, calls = mapper.map_and_call(
                    results, args.out, args.call_variants)
            else:
                count = mapper.write(results, args.out)
        except (FastaError, MappingConfigError, RegistryError) as exc:
            # Engines build lazily inside map_file, so engine-specific
            # config errors (e.g. longread chunk_length vs the index's
            # seed_length) surface here, not in _build_mapper.
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except KeyboardInterrupt:
            teardown = ("worker pool torn down, " if mapper.uses_pool
                        else "")
            print(f"\ninterrupted: {teardown}partial output left at "
                  f"{args.out}", file=sys.stderr)
            return 130
        _print_engine_report(args.engine, mapper.last_stats, count,
                             args.out)
        if args.call_variants:
            print(f"  called {calls} variants ({args.call_variants})")
    if getattr(args, "metrics_json", None):
        from .obs import write_metrics_json

        write_metrics_json(args.metrics_json)
        print(f"  metrics written to {args.metrics_json}")
    return 0


def _cmd_map_long(args: argparse.Namespace) -> int:
    """``map-long``: the ``map`` flow pinned to the longread engine."""
    args.engine = "longread"
    args.reads1 = args.reads2 = None
    return _cmd_map(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .api import ServeSettings, ServerError, serve

    mapper, code = _build_mapper(args)
    if mapper is None:
        return code
    socket_path = args.socket
    if socket_path is None:
        socket_path = (args.index if args.index is not None
                       else args.reference) + ".sock"
    settings = ServeSettings(
        max_queue=args.max_queue,
        max_clients=args.max_clients,
        request_timeout_s=args.request_timeout,
        coalesce_requests=args.coalesce_max,
        coalesce_wait_s=args.coalesce_wait_ms / 1000.0)
    source = args.index if args.index is not None else args.reference
    endpoints = socket_path if args.tcp is None \
        else f"{socket_path} + tcp {args.tcp.display}"
    print(f"serving {source} on {endpoints} "
          f"(pid {os.getpid()}, workers={args.workers}, "
          f"batch={args.batch_size}, max-clients={args.max_clients}, "
          f"max-queue={args.max_queue}); stop with `repro client "
          f"shutdown --socket {socket_path}` or SIGTERM",
          flush=True)
    try:
        server = serve(mapper, socket_path, tcp=args.tcp,
                       settings=settings)
    except ServerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        mapper.close()
        return 1
    report = server.stats
    print(f"daemon stopped after {report.uptime_s:.1f}s: "
          f"{report.requests} requests, {report.pairs_mapped} pairs "
          f"mapped, {report.errors} errors")
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from .api import Client, ClientError

    single = args.engine == "longread"
    if args.action == "map":
        if args.reads1 is None:
            print("error: client map needs --reads1", file=sys.stderr)
            return 2
        if single and args.reads2 is not None:
            print("error: --engine longread maps a single FASTQ; "
                  "pass --reads1 alone", file=sys.stderr)
            return 2
        if not single and args.reads2 is None:
            print("error: client map needs --reads2 (paired engines)",
                  file=sys.stderr)
            return 2
    try:
        with Client(args.socket, timeout=args.timeout) as client:
            if args.action == "ping":
                reply = client.ping()
                print(f"daemon alive: pid {reply['pid']}, up "
                      f"{reply['uptime_s']}s, index "
                      f"{reply['index'] or '(in-memory reference)'}, "
                      f"workers={reply['workers']}, engines "
                      f"{','.join(reply.get('engines', []))}")
            elif args.action == "stats":
                print(json.dumps(client.stats(), indent=2,
                                 sort_keys=True))
            elif args.action == "shutdown":
                client.shutdown()
                print("daemon shut down")
            else:  # map
                out = args.out
                if out is None:
                    out = f"out.{args.format or 'sam'}"
                reply = client.map_file(args.reads1, args.reads2,
                                        out, engine=args.engine,
                                        format=args.format)
                _print_engine_report(reply.get("engine", "genpair"),
                                     reply["stats"],
                                     reply["records"], reply["out"])
                print(f"  daemon-side elapsed {reply['elapsed_s']}s")
    except ClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats``: one observability snapshot from the daemon."""
    import json

    from .api import Client, ClientError
    from .obs import render_metrics, render_top

    try:
        with Client(args.socket, timeout=args.timeout) as client:
            reply = client.stats()
    except ClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(reply, indent=2, sort_keys=True))
        return 0
    for line in render_top(reply):
        print(line)
    print()
    for line in render_metrics(reply.get("metrics", {})):
        print(line)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """``repro top``: the daemon dashboard, redrawn every interval."""
    import time

    from .api import Client, ClientError
    from .obs import render_top

    frames = 0
    try:
        with Client(args.socket, timeout=args.timeout) as client:
            while True:
                reply = client.stats()
                if frames:
                    # Clear + home between refreshes only, so a single
                    # frame (--count 1) composes with pipes and tests.
                    print("\x1b[2J\x1b[H", end="")
                for line in render_top(reply):
                    print(line)
                frames += 1
                if args.count and frames >= args.count:
                    return 0
                sys.stdout.flush()
                time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0
    except ClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_index_build(args: argparse.Namespace) -> int:
    import time

    from .core import SeedMap
    from .genome import read_fasta
    from .index import INDEX_SUFFIX, save_index

    reference = read_fasta(args.reference)
    threshold = None if args.no_filter else args.filter_threshold
    start = time.perf_counter()
    seedmap = SeedMap.build(reference, seed_length=args.seed_length,
                            filter_threshold=threshold, step=args.step)
    build_seconds = time.perf_counter() - start
    out = args.out if args.out else args.reference + INDEX_SUFFIX
    total = save_index(out, seedmap, reference)
    stats = seedmap.stats
    print(f"indexed {reference.total_length:,} bp "
          f"({len(reference.names)} chromosomes) in {build_seconds:.2f}s")
    print(f"  {stats.distinct_seeds:,} seeds, "
          f"{stats.stored_locations:,} locations "
          f"({stats.filtered_seeds:,} seeds over threshold dropped)")
    print(f"wrote {out} ({total:,} bytes)")
    return 0


def _cmd_index_inspect(args: argparse.Namespace) -> int:
    from .index import IndexFormatError, inspect_index
    from .util import format_table

    try:
        report = inspect_index(args.index, verify=not args.no_verify)
    except IndexFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    meta = report["meta"]
    reference = meta["reference"]
    threshold = meta["filter_threshold"]
    print(f"{report['path']}: SeedMap index "
          f"(format v{meta['format_version']}, "
          f"{report['file_bytes']:,} bytes)")
    print(f"  fingerprint: seed length {meta['seed_length']}, filter "
          f"threshold {'none' if threshold is None else threshold}, "
          f"step {meta['step']}")
    print(f"  reference: {reference['total_length']:,} bp in "
          f"{len(reference['names'])} chromosomes "
          f"({', '.join(reference['names'][:6])}"
          f"{', ...' if len(reference['names']) > 6 else ''})")
    checks = ("ok" if report["checksums_ok"]
              else "skipped (--no-verify)")
    print(f"  checksums: {checks}")
    print(format_table(
        ("array", "dtype", "entries", "bytes", "crc32"),
        [(row["name"], row["dtype"], f"{row['count']:,}",
          f"{row['bytes']:,}", f"{row['crc32']:08x}")
         for row in report["arrays"]],
        title="Data sections"))
    return 0


def _cmd_call(args: argparse.Namespace) -> int:
    from .genome import AlignmentRecord, Cigar, encode, read_fasta
    from .variants import Pileup, call_variants, write_vcf

    reference = read_fasta(args.reference)
    pileup = Pileup(reference)
    used = 0
    with open(args.sam) as handle:
        for line in handle:
            if line.startswith("@"):
                continue
            fields = line.rstrip("\n").split("\t")
            flag = int(fields[1])
            if flag & 4 or fields[5] == "*" or fields[9] == "*":
                continue
            record = AlignmentRecord(
                query_name=fields[0], chromosome=fields[2],
                position=int(fields[3]) - 1,
                strand="-" if flag & 16 else "+",
                cigar=Cigar.parse(fields[5]),
                read_codes=_sam_codes(fields[9], flag),
                mapped=True)
            pileup.add_record(record)
            used += 1
    calls = call_variants(pileup)
    count = write_vcf(args.out, calls, reference=reference)
    print(f"piled up {used} records, wrote {count} calls to {args.out}")
    return 0


def _sam_codes(seq: str, flag: int):
    """SAM stores the reverse-strand read already reverse-complemented;
    our records store the as-sequenced read, so undo it."""
    from .genome import encode, reverse_complement

    codes = encode(seq, allow_n=True)
    codes[codes == 4] = 0  # N -> arbitrary concrete base
    if flag & 16:
        return reverse_complement(codes)
    return codes


def _cmd_design(args: argparse.Namespace) -> int:
    from .hw import (GenPairXDesign, MEMORY_PRESETS, WorkloadProfile,
                     host_bandwidth, link_feasibility)
    from .util import format_table

    memory = MEMORY_PRESETS[args.memory]
    design = GenPairXDesign(WorkloadProfile.paper(), memory=memory,
                            window_size=args.window,
                            simulated_pairs=args.simulated_pairs
                            ).compose()
    print(format_table(
        ("module", "MPair/s per inst", "latency cyc", "instances"),
        [(m.name, f"{m.throughput_mpairs:.1f}",
          f"{m.latency_cycles:.1f}", m.instances)
         for m in design.modules],
        title=f"Module sizing ({memory.name}, window {args.window})"))
    print()
    print(format_table(
        ("component", "area mm2", "power mW"),
        [(name, f"{area:.3f}", f"{power:,.1f}")
         for name, area, power in design.area_power_rows()],
        title="Area / power breakdown"))
    perf = design.as_system_perf()
    print(f"\nend-to-end: {perf.throughput_mbps:,.0f} Mbp/s | "
          f"{perf.per_area:.1f} Mbp/s/mm2 | {perf.per_watt:.1f} Mbp/s/W")
    report = host_bandwidth(design.target_mpairs)
    print(f"host interface: in {report.input_gbps:.1f} GB/s, out "
          f"{report.output_gbps:.1f} GB/s")
    for link, (headroom, fits) in link_feasibility(report).items():
        print(f"  {link}: headroom {headroom:.1f}x "
              f"({'OK' if fits else 'insufficient'})")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .lint import CODES, run_lint
    from .lint.cache import DEFAULT_CACHE_NAME
    from .lint.fixer import FIXABLE_CODES, fix_paths

    if args.list_codes:
        width = max(len(code) for code in CODES)
        for code, meaning in sorted(CODES.items()):
            mark = "  [--fix]" if code in FIXABLE_CODES else ""
            print(f"{code:<{width}}  {meaning}{mark}")
        return 0
    if args.paths:
        roots = [Path(p) for p in args.paths]
    else:
        import repro
        roots = [Path(repro.__file__).parent]
    select = [s.strip() for s in args.select.split(",")
              if s.strip()] if args.select else None
    ignore = [s.strip() for s in args.ignore.split(",")
              if s.strip()] if args.ignore else None
    exclude = [s.strip() for s in (args.exclude or []) if s.strip()]

    if args.fix or args.diff:
        codes = [code for code in FIXABLE_CODES
                 if select is None
                 or any(code.startswith(p) for p in select)]
        fixes = fix_paths(roots, codes)
        if args.diff:
            for fix in fixes:
                print(fix.diff(relative_to=Path.cwd()), end="")
            return 0
        for fix in fixes:
            fix.write()
            summary = ", ".join(f"{count} {code}" for code, count
                                in fix.counts.items())
            print(f"fixed {fix.path}: {summary}")
        if not fixes:
            print("nothing to fix")
        return 0

    cache_path = None
    if args.cache_path:
        cache_path = Path(args.cache_path)
    elif args.cache:
        cache_path = Path.cwd() / DEFAULT_CACHE_NAME
    jobs = args.jobs
    if jobs == 0:
        jobs = os.cpu_count() or 1
    report = run_lint(roots, select=select, ignore=ignore,
                      external=not args.no_external,
                      cache_path=cache_path, exclude=exclude,
                      jobs=jobs)
    baseline_root = Path.cwd()
    if args.update_baseline:
        from .lint.baseline import write_baseline
        count = write_baseline(report.findings,
                               Path(args.update_baseline),
                               baseline_root)
        print(f"baseline: recorded {count} finding(s) to "
              f"{args.update_baseline}")
        return 0
    if args.baseline:
        from .lint.baseline import apply_baseline
        report.findings, absorbed = apply_baseline(
            report.findings, Path(args.baseline), baseline_root)
        if absorbed:
            report.notes.append(
                f"baseline: {absorbed} finding(s) absorbed by "
                f"{args.baseline}")
    fmt = args.format or ("json" if args.json else "text")
    if fmt == "json":
        print(json.dumps(report.to_json(), indent=2))
    elif fmt == "sarif":
        from .lint.sarif import to_sarif
        print(json.dumps(to_sarif(report, relative_to=Path.cwd()),
                         indent=2))
    elif fmt == "github":
        from .lint.sarif import to_github
        for line in to_github(report, relative_to=Path.cwd()):
            print(line)
    else:
        for line in report.render(relative_to=Path.cwd()):
            print(line)
        for message in report.notes:
            print(f"note: {message}", file=sys.stderr)
        if report.cache_stats is not None:
            hits, misses = report.cache_stats
            print(f"cache: {hits} hit(s), {misses} miss(es)",
                  file=sys.stderr)
        if report.clean:
            print(f"clean: {len(roots)} root(s), "
                  f"{len(report.suppressed)} suppressed")
    if args.strict and not report.clean:
        return 2
    return 0


def _add_mapper_args(parser: argparse.ArgumentParser,
                     engine_flag: bool = True) -> None:
    """The flags ``map``/``map-long``/``serve`` share (they build one
    Mapper); ``map-long`` pins the engine, so it skips ``--engine``."""
    if engine_flag:
        parser.add_argument("--engine",
                            choices=("genpair", "mm2", "longread"),
                            default="genpair",
                            help="mapping engine: the paper's paired-"
                                 "end pipeline (default), the mm2-like "
                                 "baseline, or single-read long-read "
                                 "voting")
    parser.add_argument("--format", choices=("sam", "paf", "jsonl"),
                        default="sam",
                        help="output format (every engine writes "
                             "every format)")
    parser.add_argument("--reference",
                        help="FASTA reference (SeedMap is rebuilt per "
                             "run; use --index to skip that)")
    parser.add_argument("--index",
                        help="persistent index from `repro index "
                             "build`; memory-mapped, so opening is "
                             "cheap and forked workers share it")
    parser.add_argument("--no-verify", action="store_true",
                        help="with --index: skip array checksum "
                             "verification (the trusted-file reopen "
                             "fast path; opening is then O(header))")
    parser.add_argument("--delta", type=int, default=500)
    parser.add_argument("--filter-threshold", type=int, default=None,
                        help="index filtering threshold (default 500); "
                             "with --index it must match the index "
                             "fingerprint")
    parser.add_argument("--no-fallback", action="store_true",
                        help="disable the MM2 full-DP fallback")
    parser.add_argument("--filter-chain", default="none",
                        help="named pre-alignment candidate screen "
                             "chain (none, shd, gatekeeper, adjacency, "
                             "exact, combined)")
    parser.add_argument("--aligner", default="light",
                        help="named candidate aligner (light, "
                             "filtered-light, banded-dp)")
    parser.add_argument("--batch-size",
                        type=_int_arg("--batch-size", 0,
                                      " (0 disables the batched "
                                      "engine)"),
                        default=256,
                        help="pairs per vectorized batch: seeds are "
                             "hashed and resolved against the SeedMap "
                             "in one call per batch (0 disables the "
                             "batched engine and maps pair by pair; "
                             "results are identical either way)")
    parser.add_argument("--workers", type=_int_arg("--workers", 1),
                        default=1,
                        help="stream batches through a persistent "
                             "pool of N forked worker processes "
                             "(1 = in-process; capped at the CPU "
                             "count; worker stats are merged into "
                             "the final report)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="GenPairX reproduction toolchain")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress advisory notes/warnings on "
                             "stderr (record output and errors are "
                             "unaffected; REPRO_QUIET=1 does the same)")
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate",
                              help="generate reference + truth + reads")
    simulate.add_argument("--out", default="sim",
                          help="output file prefix")
    simulate.add_argument("--pairs", type=int, default=500)
    simulate.add_argument("--chromosomes", default="200000,100000",
                          help="comma-separated chromosome lengths")
    simulate.add_argument("--profile", choices=("giab", "mason"),
                          default="giab")
    simulate.add_argument("--error-rate", type=float, default=0.004,
                          help="per-base error rate (mason profile)")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(func=_cmd_simulate)

    index_cmd = sub.add_parser(
        "index", help="build / inspect a persistent SeedMap index")
    index_sub = index_cmd.add_subparsers(dest="index_command",
                                         required=True)
    index_build = index_sub.add_parser(
        "build", help="precompute SeedMap + reference to an index file")
    index_build.add_argument("--reference", required=True)
    index_build.add_argument("--out", default=None,
                             help="output path (default: "
                                  "<reference>.rpix)")
    index_build.add_argument("--seed-length", type=int, default=50)
    index_build.add_argument("--filter-threshold", type=int, default=500)
    index_build.add_argument("--no-filter", action="store_true",
                             help="keep every seed (Table 7 'no filter' "
                                  "configuration)")
    index_build.add_argument("--step", type=int, default=1,
                             help="stride between indexed reference "
                                  "positions")
    index_build.set_defaults(func=_cmd_index_build)
    index_inspect = index_sub.add_parser(
        "inspect", help="print an index's fingerprint and tables")
    index_inspect.add_argument("--index", required=True)
    index_inspect.add_argument("--no-verify", action="store_true",
                               help="skip array checksum verification")
    index_inspect.set_defaults(func=_cmd_index_inspect)

    map_cmd = sub.add_parser(
        "map", help="map FASTQ to SAM/PAF/JSONL (any engine)")
    _add_mapper_args(map_cmd)
    map_cmd.add_argument("--reads1", help="R1 FASTQ (paired engines)")
    map_cmd.add_argument("--reads2", help="R2 FASTQ (paired engines)")
    map_cmd.add_argument("--reads",
                         help="single FASTQ (single-read engines, "
                              "i.e. --engine longread)")
    map_cmd.add_argument("--out", default=None,
                         help="output path (default: out.<format>)")
    map_cmd.add_argument("--call-variants", metavar="VCF", default=None,
                         help="also pile up the mapped records and "
                              "call variants to this VCF path "
                              "(one pass over the stream)")
    map_cmd.add_argument("--metrics-json", metavar="PATH", default=None,
                         help="after the run, dump the process metrics "
                              "registry (stage timings, worker "
                              "utilization, host metadata) as JSON")
    map_cmd.set_defaults(func=_cmd_map)

    maplong_cmd = sub.add_parser(
        "map-long", help="map single-read long-read FASTQ "
                         "(the --engine longread shim)")
    _add_mapper_args(maplong_cmd, engine_flag=False)
    maplong_cmd.add_argument("--reads", required=True,
                             help="single-read FASTQ")
    maplong_cmd.add_argument("--out", default=None,
                             help="output path (default: out.<format>)")
    maplong_cmd.add_argument("--call-variants", metavar="VCF",
                             default=None,
                             help="also call variants to this VCF path")
    maplong_cmd.add_argument("--metrics-json", metavar="PATH",
                             default=None,
                             help="after the run, dump the process "
                                  "metrics registry as JSON")
    maplong_cmd.set_defaults(func=_cmd_map_long)

    serve_cmd = sub.add_parser(
        "serve", help="run the persistent mapping daemon: warm index "
                      "+ worker pool behind a UNIX socket and/or a "
                      "TCP endpoint, serving many clients at once")
    _add_mapper_args(serve_cmd)
    serve_cmd.add_argument("--socket", default=None,
                           help="UNIX socket path (default: "
                                "<index|reference>.sock)")
    serve_cmd.add_argument("--tcp", type=_tcp_arg, default=None,
                           metavar="HOST:PORT",
                           help="also listen on this TCP address "
                                "(':7533' binds every interface; "
                                "port 0 picks a free port)")
    serve_cmd.add_argument("--max-clients",
                           type=_int_arg("--max-clients", 1),
                           default=64, metavar="N",
                           help="concurrent connections before new "
                                "ones are refused with a busy error "
                                "(default: 64)")
    serve_cmd.add_argument("--max-queue",
                           type=_int_arg("--max-queue", 1),
                           default=64, metavar="N",
                           help="queued mapping requests before new "
                                "ones are refused with a busy error "
                                "(default: 64)")
    serve_cmd.add_argument("--request-timeout",
                           type=_float_arg(
                               "--request-timeout", 0.0,
                               " (per-request timeout_s can disable "
                               "the deadline)"),
                           default=300.0, metavar="SECONDS",
                           help="default per-request deadline; "
                                "expired requests answer a timeout "
                                "error (default: 300)")
    serve_cmd.add_argument("--coalesce-max",
                           type=_int_arg("--coalesce-max", 1),
                           default=16, metavar="N",
                           help="most map requests coalesced into one "
                                "engine run (default: 16; 1 disables "
                                "coalescing)")
    serve_cmd.add_argument("--coalesce-wait-ms",
                           type=_int_arg("--coalesce-wait-ms", 0),
                           default=0, metavar="MS",
                           help="how long a batch waits for more "
                                "requests before flushing (default: "
                                "0 — coalesce only requests already "
                                "queued, adding no idle latency)")
    serve_cmd.set_defaults(func=_cmd_serve)

    client_cmd = sub.add_parser(
        "client", help="talk to a running `repro serve` daemon")
    client_cmd.add_argument("action",
                            choices=("ping", "map", "stats",
                                     "shutdown"))
    client_cmd.add_argument("--socket", required=True,
                            help="the daemon's UNIX socket path or "
                                 "TCP HOST:PORT address")
    client_cmd.add_argument("--timeout", type=float, default=None,
                            help="socket timeout in seconds (default: "
                                 "wait as long as the mapping takes)")
    client_cmd.add_argument("--reads1",
                            help="client map: R1 FASTQ (or the single "
                                 "FASTQ for --engine longread)")
    client_cmd.add_argument("--reads2", help="client map: R2 FASTQ")
    client_cmd.add_argument("--engine", default=None,
                            choices=("genpair", "mm2", "longread"),
                            help="client map: per-request engine "
                                 "(default: the daemon's)")
    client_cmd.add_argument("--format", default=None,
                            choices=("sam", "paf", "jsonl"),
                            help="client map: per-request output "
                                 "format (default: the daemon's)")
    client_cmd.add_argument("--out", default=None,
                            help="client map: output path (written by "
                                 "the daemon process; default: "
                                 "out.<format>)")
    client_cmd.set_defaults(func=_cmd_client)

    stats_cmd = sub.add_parser(
        "stats", help="one-shot observability snapshot from a running "
                      "daemon (server totals + metrics registry)")
    stats_cmd.add_argument("--socket", required=True,
                           help="the daemon's UNIX socket path or "
                                "TCP HOST:PORT address")
    stats_cmd.add_argument("--timeout", type=float, default=10.0,
                           help="socket timeout in seconds")
    stats_cmd.add_argument("--json", action="store_true",
                           help="print the raw stats reply as JSON")
    stats_cmd.set_defaults(func=_cmd_stats)

    top_cmd = sub.add_parser(
        "top", help="live daemon dashboard: engines, request "
                    "latencies, worker utilization")
    top_cmd.add_argument("--socket", required=True,
                         help="the daemon's UNIX socket path or "
                              "TCP HOST:PORT address")
    top_cmd.add_argument("--interval", type=float, default=2.0,
                         help="seconds between refreshes")
    top_cmd.add_argument("--count", type=int, default=0,
                         help="frames to draw before exiting "
                              "(0 = refresh until interrupted)")
    top_cmd.add_argument("--timeout", type=float, default=10.0,
                         help="socket timeout in seconds")
    top_cmd.set_defaults(func=_cmd_top)

    call = sub.add_parser("call", help="call variants from a SAM file")
    call.add_argument("--reference", required=True)
    call.add_argument("--sam", required=True)
    call.add_argument("--out", default="calls.vcf")
    call.set_defaults(func=_cmd_call)

    design = sub.add_parser("design",
                            help="compose the hardware design report")
    design.add_argument("--memory", choices=("HBM2", "GDDR6", "DDR5"),
                        default="HBM2")
    design.add_argument("--window", type=int, default=1024)
    design.add_argument("--simulated-pairs", type=int, default=6000)
    design.set_defaults(func=_cmd_design)

    lint_cmd = sub.add_parser(
        "lint", help="run the project static-analysis gate")
    lint_cmd.add_argument("paths", nargs="*",
                          help="directories/files to lint (default: "
                               "the installed repro package)")
    lint_cmd.add_argument("--strict", action="store_true",
                          help="exit 2 on any finding (the CI gate)")
    lint_cmd.add_argument("--select", default=None,
                          help="comma-separated code prefixes to "
                               "report (e.g. RPL1,RPL5)")
    lint_cmd.add_argument("--ignore", default=None,
                          help="comma-separated code prefixes to "
                               "drop (wins over --select)")
    lint_cmd.add_argument("--no-external", action="store_true",
                          help="skip ruff/mypy, run only the project "
                               "checkers")
    lint_cmd.add_argument("--json", action="store_true",
                          help="machine-readable report on stdout "
                               "(alias for --format json)")
    lint_cmd.add_argument("--format",
                          choices=("text", "json", "sarif", "github"),
                          default=None,
                          help="report format: human text (default), "
                               "JSON, SARIF 2.1.0, or GitHub workflow "
                               "commands")
    lint_cmd.add_argument("--exclude", action="append", default=None,
                          metavar="FRAGMENT",
                          help="drop findings whose path contains this "
                               "fragment (repeatable; e.g. "
                               "tests/lint/fixtures)")
    lint_cmd.add_argument("--fix", action="store_true",
                          help="rewrite the fixable findings in place "
                               "(RPL201/RPL501/RPL601; idempotent)")
    lint_cmd.add_argument("--diff", action="store_true",
                          help="print the --fix rewrites as a unified "
                               "diff without touching any file")
    lint_cmd.add_argument("--cache", action="store_true",
                          help="use the incremental cache "
                               "(.repro-lint-cache.json in the "
                               "working directory)")
    lint_cmd.add_argument("--cache-path", default=None,
                          help="incremental cache location (implies "
                               "--cache)")
    lint_cmd.add_argument("--jobs", type=int, default=None,
                          metavar="N",
                          help="run the per-file checkers in a "
                               "process pool of N workers (report is "
                               "byte-identical to a serial run; 0 = "
                               "one per CPU)")
    lint_cmd.add_argument("--baseline", default=None, metavar="PATH",
                          help="subtract this findings snapshot and "
                               "report/gate only regressions")
    lint_cmd.add_argument("--update-baseline", default=None,
                          metavar="PATH",
                          help="write the current findings to PATH as "
                               "a baseline snapshot and exit 0")
    lint_cmd.add_argument("--list-codes", action="store_true",
                          help="print the finding-code table and exit")
    lint_cmd.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    previous_quiet = set_quiet(True) if args.quiet else None
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        # Missing inputs are usage problems, not crashes: no traceback.
        name = exc.filename if exc.filename is not None else exc
        print(f"error: no such file: {name}", file=sys.stderr)
        return 1
    finally:
        # Restore for in-process callers (tests drive main() directly).
        if args.quiet:
            set_quiet(previous_quiet)


if __name__ == "__main__":
    sys.exit(main())
