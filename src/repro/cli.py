"""Command-line interface: the reproduction as a usable tool.

Subcommands mirror a real read-mapping toolchain:

* ``simulate``      — generate a synthetic reference (FASTA), a diploid
  donor truth set (VCF), and paired-end reads (FASTQ x2);
* ``index build``   — precompute the SeedMap + encoded reference into a
  persistent memory-mapped index file (the ``bowtie2-build`` split);
* ``index inspect`` — print an index's fingerprint, tables, checksums;
* ``map``           — map paired FASTQ files with the GenPair pipeline
  (plus optional MM2 fallback) and write SAM; reads stream through in
  O(batch) memory, the batched engine is on by default
  (``--batch-size``), ``--workers N`` streams the chunks through a
  persistent pool of forked worker processes, and ``--index`` serves
  from a prebuilt index instead of rebuilding the SeedMap from FASTA;
* ``call``          — pile up a SAM file and call variants to VCF;
* ``design``        — compose the GenPairX + GenDP hardware design and
  print the Table 3/4/5-style report.

Example::

    python -m repro.cli simulate --out demo --pairs 500
    python -m repro.cli index build --reference demo_ref.fa \
        --out demo.rpix
    python -m repro.cli map --index demo.rpix \
        --reads1 demo_1.fq --reads2 demo_2.fq --out demo.sam
    python -m repro.cli call --reference demo_ref.fa --sam demo.sam \
        --out demo.vcf
    python -m repro.cli design --memory HBM2
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np


def _available_cpus() -> int:
    """CPUs this process may actually use: the scheduling affinity mask
    where available (respects cgroup/taskset limits in containers),
    falling back to the raw core count."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0)) or 1
    return os.cpu_count() or 1


def _int_arg(flag: str, minimum: int, note: str = ""):
    """Argparse type: an integer bounded below, with a clear error
    (``--workers`` must be positive, ``--batch-size`` non-negative)."""
    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected an integer, got {text!r}")
        if value < minimum:
            raise argparse.ArgumentTypeError(
                f"{flag} must be >= {minimum}{note}, got {value}")
        return value
    return parse


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .genome import (ErrorModel, ReadSimulator, generate_reference,
                         plant_variants, write_fasta, write_fastq)
    from .variants import write_vcf

    rng = np.random.default_rng(args.seed)
    lengths = tuple(int(x) for x in args.chromosomes.split(","))
    reference = generate_reference(rng, lengths)
    donor = plant_variants(rng, reference)
    error_model = (ErrorModel.giab_like() if args.profile == "giab"
                   else ErrorModel.mason_default(args.error_rate))
    simulator = ReadSimulator(reference, donor=donor,
                              error_model=error_model, seed=args.seed + 1)
    pairs = simulator.simulate_pairs(args.pairs)

    write_fasta(f"{args.out}_ref.fa", reference)
    write_vcf(f"{args.out}_truth.vcf", donor.truth, reference=reference)
    write_fastq(f"{args.out}_1.fq",
                ((pair.read1.name, pair.read1.codes) for pair in pairs))
    write_fastq(f"{args.out}_2.fq",
                ((pair.read2.name, pair.read2.codes) for pair in pairs))
    print(f"wrote {args.out}_ref.fa ({reference.total_length:,} bp), "
          f"{args.out}_truth.vcf ({len(donor.truth)} variants), "
          f"{args.out}_1.fq / {args.out}_2.fq ({args.pairs} pairs)")
    return 0


def _lazy_full_fallback(reference):
    """Full-DP fallback that defers the O(genome) minimizer-index build
    until the first pair actually needs it, so a ``map --index`` run
    whose pairs all stay on the GenPair path keeps mmap-cheap startup."""
    from .mapper import Mm2LikeMapper, make_full_fallback

    state = {}

    def fallback(read1, read2, name):
        if "fn" not in state:
            state["fn"] = make_full_fallback(Mm2LikeMapper(reference))
        return state["fn"](read1, read2, name)

    return fallback


def _cmd_map(args: argparse.Namespace) -> int:
    from .core import (DEFAULT_FILTER_THRESHOLD, GenPairConfig,
                       GenPairPipeline)
    from .genome import FastaError, SamWriter, iter_pairs, read_fasta
    from .index import IndexFormatError
    from .mapper import Mm2LikeMapper, make_full_fallback

    if (args.index is None) == (args.reference is None):
        print("error: map needs exactly one of --reference or --index",
              file=sys.stderr)
        return 2
    if args.batch_size > 0 and args.workers > 1:
        cpus = _available_cpus()
        if args.workers > cpus:
            print(f"note: --workers {args.workers} exceeds the {cpus} "
                  f"available CPU(s); capping at {cpus}",
                  file=sys.stderr)
            args.workers = cpus
    uses_pool = (args.batch_size > 0 and args.workers > 1
                 and hasattr(os, "fork"))
    if args.index is not None:
        from .index import open_index

        # The fingerprint gate: an explicit --filter-threshold that
        # disagrees with what the index was built with is rejected.
        expectations = {}
        if args.filter_threshold is not None:
            expectations["expect_filter_threshold"] = args.filter_threshold
        try:
            index = open_index(args.index, verify=not args.no_verify,
                               **expectations)
        except IndexFormatError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        reference = index.reference
        seedmap = index.seedmap
        config = GenPairConfig(seed_length=index.seed_length,
                               delta=args.delta,
                               filter_threshold=index.filter_threshold)
    else:
        reference = read_fasta(args.reference)
        seedmap = None
        threshold = (args.filter_threshold
                     if args.filter_threshold is not None
                     else DEFAULT_FILTER_THRESHOLD)
        config = GenPairConfig(delta=args.delta,
                               filter_threshold=threshold)
    fallback = None
    if not args.no_fallback:
        if uses_pool:
            # Forked workers inherit a pre-fork build copy-on-write;
            # building lazily would make every worker rebuild it.
            fallback = make_full_fallback(Mm2LikeMapper(reference))
        else:
            fallback = _lazy_full_fallback(reference)
    pipeline = GenPairPipeline(reference, seedmap=seedmap, config=config,
                               full_fallback=fallback)
    # Reader chunking follows the batch size so `--batch-size 16`
    # really does bound buffered pairs at 16, not the reader default.
    pairs = iter_pairs(args.reads1, args.reads2,
                       chunk_size=args.batch_size
                       if args.batch_size > 0 else None)
    if args.batch_size > 0:
        results = pipeline.map_stream(pairs, chunk_size=args.batch_size,
                                      workers=args.workers)
    else:
        if args.workers > 1:
            print("note: --workers requires the batched engine; "
                  "ignored with --batch-size 0", file=sys.stderr)
        results = (pipeline.map_pair(read1, read2, name)
                   for read1, read2, name in pairs)
    try:
        with SamWriter(args.out, reference=reference) as writer:
            try:
                writer.drain(results)
            finally:
                # Closing the stream tears the worker pool down (and
                # terminates it if chunks were abandoned mid-flight).
                close = getattr(results, "close", None)
                if close is not None:
                    close()
            count = writer.count
    except FastaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        teardown = "worker pool torn down, " if uses_pool else ""
        print(f"\ninterrupted: {teardown}partial SAM left at "
              f"{args.out}", file=sys.stderr)
        return 130
    stats = pipeline.stats
    print(f"mapped {stats.pairs_total} pairs -> {count} records "
          f"({args.out})")
    print(f"  light-aligned {stats.light_aligned_pct:.1f}% | "
          f"DP-at-candidates {stats.light_fallback_pct:.1f}% | "
          f"full fallback "
          f"{stats.seedmap_fallback_pct + stats.filter_fallback_pct:.1f}%"
          f" | unmapped {stats.unmapped}")
    return 0


def _cmd_index_build(args: argparse.Namespace) -> int:
    import time

    from .core import SeedMap
    from .genome import read_fasta
    from .index import INDEX_SUFFIX, save_index

    reference = read_fasta(args.reference)
    threshold = None if args.no_filter else args.filter_threshold
    start = time.perf_counter()
    seedmap = SeedMap.build(reference, seed_length=args.seed_length,
                            filter_threshold=threshold, step=args.step)
    build_seconds = time.perf_counter() - start
    out = args.out if args.out else args.reference + INDEX_SUFFIX
    total = save_index(out, seedmap, reference)
    stats = seedmap.stats
    print(f"indexed {reference.total_length:,} bp "
          f"({len(reference.names)} chromosomes) in {build_seconds:.2f}s")
    print(f"  {stats.distinct_seeds:,} seeds, "
          f"{stats.stored_locations:,} locations "
          f"({stats.filtered_seeds:,} seeds over threshold dropped)")
    print(f"wrote {out} ({total:,} bytes)")
    return 0


def _cmd_index_inspect(args: argparse.Namespace) -> int:
    from .index import IndexFormatError, inspect_index
    from .util import format_table

    try:
        report = inspect_index(args.index, verify=not args.no_verify)
    except IndexFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    meta = report["meta"]
    reference = meta["reference"]
    threshold = meta["filter_threshold"]
    print(f"{report['path']}: SeedMap index "
          f"(format v{meta['format_version']}, "
          f"{report['file_bytes']:,} bytes)")
    print(f"  fingerprint: seed length {meta['seed_length']}, filter "
          f"threshold {'none' if threshold is None else threshold}, "
          f"step {meta['step']}")
    print(f"  reference: {reference['total_length']:,} bp in "
          f"{len(reference['names'])} chromosomes "
          f"({', '.join(reference['names'][:6])}"
          f"{', ...' if len(reference['names']) > 6 else ''})")
    checks = ("ok" if report["checksums_ok"]
              else "skipped (--no-verify)")
    print(f"  checksums: {checks}")
    print(format_table(
        ("array", "dtype", "entries", "bytes", "crc32"),
        [(row["name"], row["dtype"], f"{row['count']:,}",
          f"{row['bytes']:,}", f"{row['crc32']:08x}")
         for row in report["arrays"]],
        title="Data sections"))
    return 0


def _cmd_call(args: argparse.Namespace) -> int:
    from .genome import AlignmentRecord, Cigar, encode, read_fasta
    from .variants import Pileup, call_variants, write_vcf

    reference = read_fasta(args.reference)
    pileup = Pileup(reference)
    used = 0
    with open(args.sam) as handle:
        for line in handle:
            if line.startswith("@"):
                continue
            fields = line.rstrip("\n").split("\t")
            flag = int(fields[1])
            if flag & 4 or fields[5] == "*" or fields[9] == "*":
                continue
            record = AlignmentRecord(
                query_name=fields[0], chromosome=fields[2],
                position=int(fields[3]) - 1,
                strand="-" if flag & 16 else "+",
                cigar=Cigar.parse(fields[5]),
                read_codes=_sam_codes(fields[9], flag),
                mapped=True)
            pileup.add_record(record)
            used += 1
    calls = call_variants(pileup)
    count = write_vcf(args.out, calls, reference=reference)
    print(f"piled up {used} records, wrote {count} calls to {args.out}")
    return 0


def _sam_codes(seq: str, flag: int):
    """SAM stores the reverse-strand read already reverse-complemented;
    our records store the as-sequenced read, so undo it."""
    from .genome import encode, reverse_complement

    codes = encode(seq, allow_n=True)
    codes[codes == 4] = 0  # N -> arbitrary concrete base
    if flag & 16:
        return reverse_complement(codes)
    return codes


def _cmd_design(args: argparse.Namespace) -> int:
    from .hw import (GenPairXDesign, MEMORY_PRESETS, WorkloadProfile,
                     host_bandwidth, link_feasibility)
    from .util import format_table

    memory = MEMORY_PRESETS[args.memory]
    design = GenPairXDesign(WorkloadProfile.paper(), memory=memory,
                            window_size=args.window,
                            simulated_pairs=args.simulated_pairs
                            ).compose()
    print(format_table(
        ("module", "MPair/s per inst", "latency cyc", "instances"),
        [(m.name, f"{m.throughput_mpairs:.1f}",
          f"{m.latency_cycles:.1f}", m.instances)
         for m in design.modules],
        title=f"Module sizing ({memory.name}, window {args.window})"))
    print()
    print(format_table(
        ("component", "area mm2", "power mW"),
        [(name, f"{area:.3f}", f"{power:,.1f}")
         for name, area, power in design.area_power_rows()],
        title="Area / power breakdown"))
    perf = design.as_system_perf()
    print(f"\nend-to-end: {perf.throughput_mbps:,.0f} Mbp/s | "
          f"{perf.per_area:.1f} Mbp/s/mm2 | {perf.per_watt:.1f} Mbp/s/W")
    report = host_bandwidth(design.target_mpairs)
    print(f"host interface: in {report.input_gbps:.1f} GB/s, out "
          f"{report.output_gbps:.1f} GB/s")
    for link, (headroom, fits) in link_feasibility(report).items():
        print(f"  {link}: headroom {headroom:.1f}x "
              f"({'OK' if fits else 'insufficient'})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="GenPairX reproduction toolchain")
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate",
                              help="generate reference + truth + reads")
    simulate.add_argument("--out", default="sim",
                          help="output file prefix")
    simulate.add_argument("--pairs", type=int, default=500)
    simulate.add_argument("--chromosomes", default="200000,100000",
                          help="comma-separated chromosome lengths")
    simulate.add_argument("--profile", choices=("giab", "mason"),
                          default="giab")
    simulate.add_argument("--error-rate", type=float, default=0.004,
                          help="per-base error rate (mason profile)")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(func=_cmd_simulate)

    index_cmd = sub.add_parser(
        "index", help="build / inspect a persistent SeedMap index")
    index_sub = index_cmd.add_subparsers(dest="index_command",
                                         required=True)
    index_build = index_sub.add_parser(
        "build", help="precompute SeedMap + reference to an index file")
    index_build.add_argument("--reference", required=True)
    index_build.add_argument("--out", default=None,
                             help="output path (default: "
                                  "<reference>.rpix)")
    index_build.add_argument("--seed-length", type=int, default=50)
    index_build.add_argument("--filter-threshold", type=int, default=500)
    index_build.add_argument("--no-filter", action="store_true",
                             help="keep every seed (Table 7 'no filter' "
                                  "configuration)")
    index_build.add_argument("--step", type=int, default=1,
                             help="stride between indexed reference "
                                  "positions")
    index_build.set_defaults(func=_cmd_index_build)
    index_inspect = index_sub.add_parser(
        "inspect", help="print an index's fingerprint and tables")
    index_inspect.add_argument("--index", required=True)
    index_inspect.add_argument("--no-verify", action="store_true",
                               help="skip array checksum verification")
    index_inspect.set_defaults(func=_cmd_index_inspect)

    map_cmd = sub.add_parser("map", help="map paired FASTQ to SAM")
    map_cmd.add_argument("--reference",
                         help="FASTA reference (SeedMap is rebuilt per "
                              "run; use --index to skip that)")
    map_cmd.add_argument("--index",
                         help="persistent index from `repro index "
                              "build`; memory-mapped, so opening is "
                              "cheap and forked workers share it")
    map_cmd.add_argument("--no-verify", action="store_true",
                         help="with --index: skip array checksum "
                              "verification (the trusted-file reopen "
                              "fast path; opening is then O(header))")
    map_cmd.add_argument("--reads1", required=True)
    map_cmd.add_argument("--reads2", required=True)
    map_cmd.add_argument("--out", default="out.sam")
    map_cmd.add_argument("--delta", type=int, default=500)
    map_cmd.add_argument("--filter-threshold", type=int, default=None,
                         help="index filtering threshold (default 500); "
                              "with --index it must match the index "
                              "fingerprint")
    map_cmd.add_argument("--no-fallback", action="store_true",
                         help="disable the MM2 full-DP fallback")
    map_cmd.add_argument("--batch-size",
                         type=_int_arg("--batch-size", 0,
                                       " (0 disables the batched "
                                       "engine)"),
                         default=256,
                         help="pairs per vectorized batch: seeds are "
                              "hashed and resolved against the SeedMap "
                              "in one call per batch (0 disables the "
                              "batched engine and maps pair by pair; "
                              "results are identical either way)")
    map_cmd.add_argument("--workers", type=_int_arg("--workers", 1),
                         default=1,
                         help="stream batches through a persistent "
                              "pool of N forked worker processes "
                              "(1 = in-process; capped at the CPU "
                              "count; worker stats are merged into "
                              "the final report)")
    map_cmd.set_defaults(func=_cmd_map)

    call = sub.add_parser("call", help="call variants from a SAM file")
    call.add_argument("--reference", required=True)
    call.add_argument("--sam", required=True)
    call.add_argument("--out", default="calls.vcf")
    call.set_defaults(func=_cmd_call)

    design = sub.add_parser("design",
                            help="compose the hardware design report")
    design.add_argument("--memory", choices=("HBM2", "GDDR6", "DDR5"),
                        default="HBM2")
    design.add_argument("--window", type=int, default=1024)
    design.add_argument("--simulated-pairs", type=int, default=6000)
    design.set_defaults(func=_cmd_design)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
