"""The NDJSON wire protocol: request decoding, error shapes, totals.

One JSON object per line, one response line per request line.  Every
response carries ``"ok"``; a failure answers ``{"ok": false, "error":
<message>, "error_code": <code>}`` where the code is machine-matchable
(clients branch on it — the retry-on-``busy`` policy in
:class:`repro.api.Client` does).  The codes:

``busy``
    The daemon's request queue (or client slot table) is full; the
    response carries ``retry_after_s``, a backoff hint.  Retryable.
``timeout``
    The request's deadline expired (``stage`` says whether it was
    still queued or already executing); the work was dropped or its
    result discarded.  Retryable with a larger ``timeout_s``.
``bad_request`` / ``unknown_op`` / ``oversized``
    The request itself is malformed; retrying identical bytes fails
    identically.
``shutting_down``
    The daemon is draining its queue on the way down.
``internal``
    The handler raised; the message carries the exception.

Requests are decoded *before* they are queued, so a malformed request
is answered in microseconds and never occupies a scheduler slot.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..genome.sequence import encode
from ..util.sync import maybe_sanitize_lock

#: Largest accepted request line (a guard against a runaway client;
#: ~64 MiB comfortably holds a few hundred thousand inline pairs).
MAX_REQUEST_BYTES = 64 * 1024 * 1024

#: Machine-matchable ``error_code`` values.
E_BUSY = "busy"
E_TIMEOUT = "timeout"
E_BAD_REQUEST = "bad_request"
E_UNKNOWN_OP = "unknown_op"
E_OVERSIZED = "oversized"
E_SHUTTING_DOWN = "shutting_down"
E_INTERNAL = "internal"

#: Retryable codes (the client's default retry policy consults this).
RETRYABLE_CODES = (E_BUSY,)


def error_reply(code: str, message: str,
                op: Optional[str] = None,
                **extra: Any) -> Dict[str, Any]:
    """The one way every failure response is shaped."""
    reply: Dict[str, Any] = {"ok": False, "error": message,
                             "error_code": code}
    if op is not None:
        reply["op"] = op
    reply.update(extra)
    return reply


class RequestError(ValueError):
    """A request failed validation before any mapping work."""


def decode_pairs(pairs) -> List[Tuple]:
    """Inline ``pairs`` payload entries as ``(codes1, codes2, name)``."""
    if not isinstance(pairs, list):
        raise RequestError('"pairs" must be a list of '
                           '[read1, read2, name?] entries')
    decoded = []
    for number, entry in enumerate(pairs):
        if isinstance(entry, dict):
            read1, read2 = entry["read1"], entry["read2"]
            name = entry.get("name", f"pair{number}")
        else:
            if len(entry) not in (2, 3):
                raise RequestError(f"pair {number}: expected "
                                   "[read1, read2, name?]")
            read1, read2 = entry[0], entry[1]
            name = entry[2] if len(entry) > 2 else f"pair{number}"
        decoded.append((encode(read1, allow_n=True),
                        encode(read2, allow_n=True), str(name)))
    return decoded


def decode_reads(reads) -> List[Tuple]:
    """Inline ``reads`` payload entries as ``(codes, name)``."""
    if not isinstance(reads, list):
        raise RequestError('"reads" must be a list of [read, name?] '
                           "entries")
    decoded = []
    for number, entry in enumerate(reads):
        if isinstance(entry, dict):
            read = entry["read"]
            name = entry.get("name", f"read{number}")
        elif isinstance(entry, str):
            read, name = entry, f"read{number}"
        else:
            if len(entry) not in (1, 2):
                raise RequestError(f"read {number}: expected "
                                   "[read, name?]")
            read = entry[0]
            name = entry[1] if len(entry) > 1 else f"read{number}"
        decoded.append((encode(read, allow_n=True), str(name)))
    return decoded


def request_timeout_s(request: Dict[str, Any],
                      default: Optional[float]) -> Optional[float]:
    """The effective per-request deadline in seconds.

    ``"timeout_s"`` overrides the server default; ``0`` (or ``null``)
    explicitly disables the deadline for this request.  Negative or
    non-numeric values are rejected.
    """
    if "timeout_s" not in request:
        return default
    value = request["timeout_s"]
    if value is None:
        return None
    if isinstance(value, bool) \
            or not isinstance(value, (int, float)):
        raise RequestError('"timeout_s" must be a number of seconds')
    if value < 0:
        raise RequestError('"timeout_s" must be >= 0 '
                           "(0 disables the deadline)")
    return float(value) if value else None


@dataclass
class ServerStats:
    """Aggregate request counters, reported by the ``stats`` op.

    Every mutation runs under ``_lock``: connection threads record
    concurrently, and ``requests += 1`` / ``by_op`` get-and-add are
    exactly the lost-update shapes the RPL1002 lint flags.
    """

    started_monotonic: float = field(default_factory=time.monotonic)
    requests: int = 0
    errors: int = 0
    pairs_mapped: int = 0
    connections: int = 0
    active_connections: int = 0
    by_op: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=lambda: maybe_sanitize_lock("serve.stats"),
        repr=False, compare=False)

    def record(self, op: str, pairs: int = 0) -> None:
        with self._lock:
            self.requests += 1
            self.pairs_mapped += pairs
            self.by_op[op] = self.by_op.get(op, 0) + 1

    def count_error(self) -> None:
        with self._lock:
            self.errors += 1

    def connection_opened(self, limit: Optional[int] = None) -> bool:
        """Claim a connection slot; ``False`` when ``limit`` active
        connections are already held (the caller answers ``busy`` and
        closes — the check and the claim are one atomic step)."""
        with self._lock:
            if limit is not None and self.active_connections >= limit:
                return False
            self.connections += 1
            self.active_connections += 1
            return True

    def connection_closed(self) -> None:
        with self._lock:
            self.active_connections -= 1

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started_monotonic

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {"requests": self.requests, "errors": self.errors,
                    "pairs_mapped": self.pairs_mapped,
                    "connections": self.connections,
                    "active_connections": self.active_connections,
                    "uptime_s": round(self.uptime_s, 3),
                    "by_op": dict(self.by_op)}
