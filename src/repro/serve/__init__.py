"""The concurrent serving tier behind ``repro serve``.

One warm :class:`~repro.api.Mapper`, many simultaneous clients: accept
threads on a UNIX socket and/or a TCP endpoint feed a bounded queue; a
scheduler thread drains it onto the one warm engine pool, coalescing
compatible small ``map`` requests into shared engine runs and applying
backpressure (``busy``) and per-request deadlines (``timeout``).  The
package layers, bottom-up:

* :mod:`repro.serve.address` — UNIX-path / ``HOST:PORT`` endpoint
  parsing shared by server and client;
* :mod:`repro.serve.protocol` — NDJSON request decoding, the
  structured error shapes, and the server totals;
* :mod:`repro.serve.listeners` — bound accepting sockets;
* :mod:`repro.serve.scheduler` — the bounded queue, coalescing, and
  deadline enforcement in front of the mapper;
* :mod:`repro.serve.server` — per-connection framing, the ops layer,
  and the :func:`serve` entry point.

``repro.api`` re-exports the public names (:class:`MapServer`,
:func:`serve`, …), so existing imports keep working; this package is
the implementation.
"""

from .address import (TCP, UNIX, Address, AddressError, parse_address,
                      require_tcp)
from .listeners import ServerError
from .protocol import (E_BAD_REQUEST, E_BUSY, E_INTERNAL, E_OVERSIZED,
                       E_SHUTTING_DOWN, E_TIMEOUT, E_UNKNOWN_OP,
                       MAX_REQUEST_BYTES, RETRYABLE_CODES,
                       RequestError, ServerStats, error_reply)
from .scheduler import MapTask, Scheduler, ServeSettings
from .server import MapServer, serve

__all__ = [
    "Address", "AddressError", "parse_address", "require_tcp",
    "TCP", "UNIX",
    "MAX_REQUEST_BYTES", "RETRYABLE_CODES", "RequestError",
    "ServerStats", "error_reply",
    "E_BAD_REQUEST", "E_BUSY", "E_INTERNAL", "E_OVERSIZED",
    "E_SHUTTING_DOWN", "E_TIMEOUT", "E_UNKNOWN_OP",
    "MapTask", "Scheduler", "ServeSettings",
    "MapServer", "ServerError", "serve",
]
