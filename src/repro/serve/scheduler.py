"""The request scheduler: one warm engine pool, many concurrent clients.

Connection threads never touch the :class:`~repro.api.Mapper`
directly.  They submit :class:`MapTask` items into a **bounded** queue
and block on the task's completion event; one scheduler thread drains
the queue and multiplexes the work onto the single warm mapper.  Three
properties fall out:

* **Coalescing.**  Inline ``map`` requests that agree on (engine,
  output format) are merged into one batch — up to
  ``coalesce_requests`` requests / ``coalesce_items`` workload items,
  flushed early when the queue runs dry or after ``coalesce_wait_s``
  (the deadline trigger; 0 keeps coalescing purely opportunistic, so
  an idle daemon adds no latency).  The batch maps as **one**
  vectorized engine run — the whole point: eight 4-pair requests cost
  one 32-pair ``map_batch``, not eight runs — and the results are
  demultiplexed back per request, each request's lines rendered
  separately, so every reply is byte-identical to an uncoalesced one
  (mapping is per-item deterministic; asserted in the tests and the
  concurrent CI stress).  Requests that differ in engine or format are
  **never** merged; ``map_file`` and traced requests always run solo.
* **Backpressure.**  The queue is bounded (``max_queue``); when it is
  full, :meth:`Scheduler.submit` refuses and the server answers a
  structured ``busy`` error instead of queueing without bound.
* **Deadlines.**  Every task may carry one.  Expiring while queued
  skips the work entirely; expiring while executing discards the
  result.  Either way the waiting connection thread answers promptly
  (it waits only until the deadline) and the queue never wedges — an
  abandoned task (timeout or client disconnect) is completed into the
  void and dropped.

Locking: the queue is a ``queue.Queue`` (its own lock); per-task state
is guarded by the task's ``serve.task`` lock; scheduler totals by
``serve.sched``; the mapper itself is touched only by the scheduler
thread and :meth:`close`, serialized by the ``serve.map`` lock.  Batch
assembly state (the holdover slot) is scheduler-thread-private.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..obs import capture_trace, get_registry, span
from ..util.sync import maybe_sanitize_lock
from .protocol import (E_INTERNAL, E_SHUTTING_DOWN, E_TIMEOUT,
                       error_reply)

#: ``MapTask.state`` values (guarded by the task lock).
QUEUED = "queued"
EXECUTING = "executing"
DONE = "done"
ABANDONED = "abandoned"


@dataclass
class ServeSettings:
    """The serving-tier knobs (``repro serve`` flags map 1:1).

    Defaults are deliberately conservative: a full queue answers
    ``busy`` long before memory is at risk, and a five-minute request
    deadline bounds how long a wedged client can hold a slot.
    """

    max_queue: int = 64
    max_clients: int = 64
    request_timeout_s: Optional[float] = 300.0
    coalesce_requests: int = 16
    coalesce_items: int = 256
    coalesce_wait_s: float = 0.0

    def validate(self) -> "ServeSettings":
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        if self.request_timeout_s is not None \
                and self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0 "
                             "(None disables the default deadline)")
        if self.coalesce_requests < 1:
            raise ValueError("coalesce_requests must be >= 1")
        if self.coalesce_items < 1:
            raise ValueError("coalesce_items must be >= 1")
        if self.coalesce_wait_s < 0:
            raise ValueError("coalesce_wait_s must be >= 0")
        return self


class MapTask:
    """One queued mapping request and its completion rendezvous.

    The submitting connection thread blocks in :meth:`wait`; the
    scheduler thread delivers through :meth:`complete`.  Either side
    may lose the race — a task abandoned at its deadline (or because
    the client disconnected) swallows the late result silently.
    """

    __slots__ = ("op", "engine", "format", "header", "trace", "items",
                 "payload", "deadline", "enqueued", "state", "reply",
                 "_lock", "_done")

    def __init__(self, op: str, engine: str, format: str,
                 payload: Any, items: int, header: bool = False,
                 trace: bool = False,
                 timeout_s: Optional[float] = None) -> None:
        self.op = op
        self.engine = engine
        self.format = format
        self.header = header
        self.trace = trace
        self.payload = payload
        self.items = items
        self.enqueued = time.monotonic()
        self.deadline = (self.enqueued + timeout_s
                         if timeout_s is not None else None)
        self.state = QUEUED
        self.reply: Optional[Dict[str, Any]] = None
        self._lock = maybe_sanitize_lock("serve.task")
        self._done = threading.Event()

    # -- coalescing ----------------------------------------------------

    @property
    def coalesce_key(self) -> Optional[tuple]:
        """Tasks with equal keys may share a batch; ``None`` runs solo.

        Only inline ``map`` work coalesces, and only when engine and
        output format agree — merging across either would feed one
        engine run items meant for another, breaking byte-identity.
        Traced requests run solo so their span breakdown covers
        exactly their own work.
        """
        if self.op != "map" or self.trace:
            return None
        return (self.engine, self.format)

    # -- deadline ------------------------------------------------------

    def remaining_s(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def expired(self) -> bool:
        return self.deadline is not None \
            and time.monotonic() > self.deadline

    # -- rendezvous ----------------------------------------------------

    def mark_executing(self) -> bool:
        """Scheduler-side: claim the task for execution; ``False`` if
        the waiter already abandoned it (skip the work)."""
        with self._lock:
            if self.state == ABANDONED:
                return False
            self.state = EXECUTING
            return True

    def complete(self, reply: Dict[str, Any]) -> bool:
        """Deliver the reply; ``False`` when the waiter is gone and
        the result was discarded."""
        with self._lock:
            delivered = self.state != ABANDONED
            if delivered:
                self.reply = reply
            self.state = DONE
            self._done.set()
            return delivered

    def abandon(self) -> Optional[str]:
        """Waiter-side: give up on the task (deadline hit, or the
        client disconnected).  Returns the state the task was in when
        abandoned (``queued``/``executing``) so the caller can report
        *where* the deadline expired — or ``None`` when a reply
        arrived first and abandoning lost the race."""
        with self._lock:
            if self.state == DONE:
                return None
            stage, self.state = self.state, ABANDONED
            return stage

    def wait(self, timeout: Optional[float] = None
             ) -> Optional[Dict[str, Any]]:
        """Block until completion (or ``timeout``); the reply, or
        ``None`` when the wait timed out."""
        if not self._done.wait(timeout):
            return None
        with self._lock:
            return self.reply


@dataclass
class SchedulerTotals:
    """Scheduler-side counters (lock-guarded; ``stats`` op surface)."""

    batches: int = 0
    coalesced_batches: int = 0
    coalesced_requests: int = 0
    max_batch_requests: int = 0
    busy_rejected: int = 0
    timeouts: int = 0
    discarded: int = 0


class Scheduler:
    """Owns the warm mapper; drains the bounded queue in one thread."""

    def __init__(self, mapper, settings: Optional[ServeSettings] = None
                 ) -> None:
        self.mapper = mapper
        self.settings = (settings if settings is not None
                         else ServeSettings()).validate()
        self._queue: "queue.Queue[Optional[MapTask]]" = queue.Queue(
            maxsize=self.settings.max_queue)
        self._totals = SchedulerTotals()
        self._totals_lock = maybe_sanitize_lock("serve.sched")
        # The mapper is exercised only here and in close(); the lock
        # makes teardown wait for an in-flight batch.
        self._map_lock = maybe_sanitize_lock("serve.map")
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Scheduler-thread-private holdover: the first task of the
        # *next* batch, pulled while assembling the current one.
        self._holdover: Optional[MapTask] = None

    # -- submission (connection threads) -------------------------------

    def submit(self, task: MapTask) -> bool:
        """Enqueue; ``False`` means the queue is full (answer busy)."""
        if self._stop.is_set():
            return False
        try:
            self._queue.put_nowait(task)
        except queue.Full:
            with self._totals_lock:
                self._totals.busy_rejected += 1
            return False
        self._observe_depth()
        return True

    def queue_depth(self) -> int:
        return self._queue.qsize()

    @property
    def closing(self) -> bool:
        return self._stop.is_set()

    def _observe_depth(self) -> None:
        obs = get_registry()
        if obs.enabled:
            obs.gauge("serve.queue_depth").set(self._queue.qsize())

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spawn the scheduler thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-serve-sched",
                daemon=True)
            self._thread.start()

    def close(self) -> None:
        """Stop the thread, fail queued work, close the mapper.

        The current batch finishes (the map lock serializes us behind
        it); everything still queued is answered ``shutting_down``.
        """
        self._stop.set()
        try:
            self._queue.put_nowait(None)  # wake a blocked get()
        except queue.Full:
            pass
        thread = self._thread
        if thread is not None:
            thread.join(timeout=30.0)
        self._drain_failed()
        with self._map_lock:
            self.mapper.close()

    def _drain_failed(self) -> None:
        leftovers: List[MapTask] = []
        if self._holdover is not None:
            leftovers.append(self._holdover)
            self._holdover = None
        while True:
            try:
                task = self._queue.get_nowait()
            except queue.Empty:
                break
            if task is not None:
                leftovers.append(task)
        for task in leftovers:
            task.complete(error_reply(
                E_SHUTTING_DOWN, "daemon is shutting down", op=task.op))

    def totals(self) -> Dict[str, Any]:
        with self._totals_lock:
            snapshot = {
                "batches": self._totals.batches,
                "coalesced_batches": self._totals.coalesced_batches,
                "coalesced_requests": self._totals.coalesced_requests,
                "max_batch_requests": self._totals.max_batch_requests,
                "busy_rejected": self._totals.busy_rejected,
                "timeouts": self._totals.timeouts,
                "discarded": self._totals.discarded,
            }
        snapshot["queue_depth"] = self._queue.qsize()
        snapshot["max_queue"] = self.settings.max_queue
        snapshot["coalesce_requests"] = self.settings.coalesce_requests
        snapshot["coalesce_items"] = self.settings.coalesce_items
        snapshot["coalesce_wait_s"] = self.settings.coalesce_wait_s
        return snapshot

    # -- the scheduler loop --------------------------------------------

    def _loop(self) -> None:
        while True:
            batch = self._collect()
            if batch:
                self._execute(batch)
            if self._stop.is_set() and not batch \
                    and self._holdover is None:
                return

    def run_once(self) -> int:
        """Collect and execute one batch synchronously (tests drive
        the scheduler deterministically through this instead of the
        thread).  Returns the number of requests in the batch."""
        batch = self._collect(block=False)
        if batch:
            self._execute(batch)
        return len(batch)

    def _next_task(self, block: bool) -> Optional[MapTask]:
        if self._holdover is not None:
            task, self._holdover = self._holdover, None
            return task
        while True:
            try:
                task = self._queue.get(block=block, timeout=0.2)
            except queue.Empty:
                if not block or self._stop.is_set():
                    return None
                continue
            self._observe_depth()
            return task  # None is the shutdown sentinel

    def _collect(self, block: bool = True) -> List[MapTask]:
        """Assemble one batch: a first task, then compatible followers
        until a size/item bound, the wait deadline, or a key change."""
        first = self._next_task(block)
        if first is None:
            return []
        batch = [first]
        key = first.coalesce_key
        if key is None:
            return batch
        items = first.items
        settings = self.settings
        flush_at = time.monotonic() + settings.coalesce_wait_s
        while len(batch) < settings.coalesce_requests \
                and items < settings.coalesce_items:
            wait_s = flush_at - time.monotonic()
            try:
                if wait_s > 0:
                    follower = self._queue.get(timeout=wait_s)
                else:
                    follower = self._queue.get_nowait()
            except queue.Empty:
                break
            self._observe_depth()
            if follower is None:  # shutdown sentinel mid-batch
                self._stop.set()
                break
            if follower.coalesce_key != key:
                self._holdover = follower
                break
            batch.append(follower)
            items += follower.items
        return batch

    # -- batch execution -----------------------------------------------

    def _execute(self, batch: List[MapTask]) -> None:
        obs = get_registry()
        live: List[MapTask] = []
        for task in batch:
            if task.expired():
                self._timeout(task, QUEUED)
            elif task.mark_executing():
                live.append(task)
            else:
                self._count_discarded()
        if not live:
            return
        if obs.enabled:
            obs.histogram("serve.batch_requests").observe(len(live))
            obs.histogram("serve.batch_items").observe(
                sum(task.items for task in live))
            now = time.monotonic()
            for task in live:
                obs.histogram("serve.queue_wait_s").observe(
                    now - task.enqueued)
        with self._totals_lock:
            self._totals.batches += 1
            if len(live) > 1:
                self._totals.coalesced_batches += 1
                self._totals.coalesced_requests += len(live)
            if len(live) > self._totals.max_batch_requests:
                self._totals.max_batch_requests = len(live)
        try:
            with self._map_lock:
                if live[0].op == "map_file":
                    replies = [self._run_map_file(live[0])]
                else:
                    replies = self._run_map(live)
        except Exception as exc:  # keep serving after a bad batch
            message = f"{type(exc).__name__}: {exc}"
            for task in live:
                self._deliver(task, error_reply(E_INTERNAL, message,
                                                op=task.op))
            return
        for task, reply in zip(live, replies):
            if task.expired():
                self._timeout(task, EXECUTING)
            else:
                self._deliver(task, reply)

    def _deliver(self, task: MapTask, reply: Dict[str, Any]) -> None:
        if not task.complete(reply):
            self._count_discarded()

    def note_timeout(self) -> None:
        """Count one deadline expiry (also called by the connection
        layer when a waiter abandons its task at the deadline before
        the scheduler notices)."""
        with self._totals_lock:
            self._totals.timeouts += 1
        obs = get_registry()
        if obs.enabled:
            obs.counter("serve.timeouts").inc()

    def _timeout(self, task: MapTask, stage: str) -> None:
        delivered = task.complete(error_reply(
            E_TIMEOUT,
            f"request deadline expired while {stage} "
            "(raise timeout_s, or retry when the daemon is idle)",
            op=task.op, stage=stage))
        if delivered:
            self.note_timeout()
        else:
            # The waiting connection thread already abandoned the task
            # at its deadline — and counted the timeout itself via
            # note_timeout() — so count only the discarded result here.
            self._count_discarded()

    def _count_discarded(self) -> None:
        with self._totals_lock:
            self._totals.discarded += 1

    # -- mapping -------------------------------------------------------

    def _run_map(self, batch: List[MapTask]
                 ) -> List[Dict[str, Any]]:
        """Map every task's items as one engine run, then demultiplex.

        Mapping is per-item deterministic (the batched engines are
        bit-identical to per-item runs — PR 1's gate), and lines are
        rendered **per request**, so each reply's bytes match what a
        solo run of that request would produce.
        """
        first = batch[0]
        merged: List = []
        for task in batch:
            merged.extend(task.payload)

        def run():
            with span("serve.map"):
                results = self.mapper.map(merged, engine=first.engine)
            with span("serve.render"):
                rendered = []
                offset = 0
                for task in batch:
                    piece = results[offset:offset + task.items]
                    offset += task.items
                    rendered.append(list(self.mapper.lines(
                        piece, format=task.format,
                        header=task.header)))
                return rendered

        started = time.perf_counter()
        trace = None
        if first.trace:
            with capture_trace() as tracer:
                rendered = run()
            trace = tracer.to_dicts()
        else:
            rendered = run()
        self._record_map_metrics(first.engine, first.format,
                                 time.perf_counter() - started)
        stats = self._stats_dict(self.mapper.last_stats)
        replies = []
        for task, lines in zip(batch, rendered):
            reply = {"pairs": task.items, "lines": lines,
                     "engine": first.engine, "format": task.format,
                     "stats": stats, "coalesced": len(batch)}
            if trace is not None:
                reply["trace"] = trace
            if task.format == "sam":
                reply["sam"] = lines  # historical alias
            replies.append(reply)
        return replies

    def _run_map_file(self, task: MapTask) -> Dict[str, Any]:
        reads1, reads2, out = task.payload

        def run():
            with span("serve.map"):
                results = self.mapper.map_file(reads1, reads2,
                                               engine=task.engine)
                return self.mapper.write(results, out,
                                         format=task.format)

        started = time.perf_counter()
        trace = None
        if task.trace:
            with capture_trace() as tracer:
                records = run()
            trace = tracer.to_dicts()
        else:
            records = run()
        self._record_map_metrics(task.engine, task.format,
                                 time.perf_counter() - started)
        stats = self._stats_dict(self.mapper.last_stats)
        units = _stat_units(stats)
        task.items = units  # server-side totals count what really ran
        reply = {"pairs": units, "records": records, "out": out,
                 "engine": task.engine, "format": task.format,
                 "stats": stats}
        if trace is not None:
            reply["trace"] = trace
        return reply

    @staticmethod
    def _stats_dict(stats) -> Dict[str, int]:
        from ..api.engines import stats_dict

        return stats_dict(stats)

    @staticmethod
    def _record_map_metrics(engine_name: str, format_name: str,
                            elapsed: float) -> None:
        obs = get_registry()
        if obs.enabled:
            obs.histogram(
                f"serve.map_s.{engine_name}.{format_name}"
            ).observe(elapsed)


def _stat_units(stats: Dict[str, int]) -> int:
    """How many workload items a per-run stats dict accounts for
    (pairs for the paired engines, reads for single-read ones)."""
    for key in ("pairs_total", "pairs_seen", "reads_total"):
        if key in stats:
            return stats[key]
    return 0
