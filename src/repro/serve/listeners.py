"""Accepting sockets for the serving tier: UNIX-domain and TCP.

Each listener wraps one bound, listening socket with the same small
surface — :meth:`accept` (with a short timeout so accept threads
notice shutdown promptly), :meth:`close`, and a ``display`` string for
logs and the ``ping`` reply.  The daemon runs one accept thread per
listener, so one process serves the historical UNIX socket and a TCP
endpoint simultaneously over the same scheduler.

The UNIX listener keeps the PR 4 claim semantics: a stale socket file
(machine rebooted, daemon killed ``-9``) is silently reclaimed, but a
path that still answers connections is somebody else's live daemon and
binding refuses.
"""

from __future__ import annotations

import os
import socket
from typing import Optional, Tuple

from .address import TCP, UNIX, Address

#: How often a blocked accept() wakes to check the stop flag.
ACCEPT_POLL_S = 0.2


class ServerError(RuntimeError):
    """The daemon could not start (e.g. the socket is already served)."""


class Listener:
    """One bound, listening stream socket (see subclasses)."""

    kind: str = "?"

    def __init__(self, sock: socket.socket, display: str) -> None:
        self._socket = sock
        self.display = display

    def accept(self) -> Optional[socket.socket]:
        """One accepted connection, or ``None`` on the poll timeout
        (callers loop and re-check their stop flag)."""
        try:
            conn, _ = self._socket.accept()
        except socket.timeout:
            return None
        return conn

    def close(self) -> None:
        try:
            self._socket.close()
        except OSError:  # pragma: no cover
            pass


class UnixListener(Listener):
    """The historical UNIX-domain socket endpoint."""

    kind = UNIX

    def __init__(self, path: str, backlog: int) -> None:
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover
            raise ServerError("repro serve requires UNIX-domain "
                              "sockets, which this platform lacks; "
                              "listen on --tcp instead")
        self.path = str(path)
        super().__init__(self._claim(backlog), self.path)

    def _claim(self, backlog: int) -> socket.socket:
        """Bind the socket path, refusing to evict a live daemon.

        A stale socket file (machine rebooted, daemon killed -9) is
        unlinked; one that still answers connections is somebody
        else's live server.
        """
        if os.path.exists(self.path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(0.5)
            try:
                probe.connect(self.path)
            except OSError:
                try:
                    os.unlink(self.path)  # stale leftover
                except OSError as exc:
                    raise ServerError(
                        f"cannot reclaim stale socket "
                        f"{self.path!r}: {exc}") from None
            else:
                probe.close()
                raise ServerError(
                    f"{self.path!r} is already being served; "
                    "stop that daemon first (repro client shutdown)")
            finally:
                probe.close()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.bind(self.path)
            sock.listen(backlog)
            # Wake the accept loop periodically to notice shutdown.
            sock.settimeout(ACCEPT_POLL_S)
        except OSError as exc:
            sock.close()
            raise ServerError(
                f"cannot bind {self.path!r}: {exc}") from None
        return sock

    def close(self) -> None:
        super().close()
        try:
            os.unlink(self.path)
        except OSError:
            pass


class TcpListener(Listener):
    """A TCP endpoint (``repro serve --tcp HOST:PORT``)."""

    kind = TCP

    def __init__(self, address: Address, backlog: int) -> None:
        host = address.host or ""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((host, address.port))
            sock.listen(backlog)
            sock.settimeout(ACCEPT_POLL_S)
        except OSError as exc:
            sock.close()
            raise ServerError(
                f"cannot bind tcp address {address.display!r}: "
                f"{exc}") from None
        # Port 0 means "kernel picks"; report the resolved endpoint.
        self.host, self.port = sock.getsockname()[:2]
        self.address = Address(kind=TCP, host=address.host,
                               port=self.port)
        super().__init__(sock, self.address.display)


def bound_endpoints(listeners) -> Tuple[dict, ...]:
    """JSON-friendly descriptions of every listening endpoint (the
    ``ping`` reply's ``listeners`` key and the serve banner)."""
    described = []
    for listener in listeners:
        entry = {"kind": listener.kind, "address": listener.display}
        if listener.kind == TCP:
            entry["port"] = listener.port
        described.append(entry)
    return tuple(described)
