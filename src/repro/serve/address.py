"""Listen/connect addresses for the serving tier: UNIX paths and TCP.

One daemon can listen on several addresses at once — the historical
UNIX-domain socket plus a TCP endpoint reachable from other hosts —
and the client connects to either through the same flag, so both sides
need one shared notion of "an address".  :func:`parse_address` turns
the user-facing text form into an :class:`Address`:

* ``tcp://HOST:PORT`` — explicit TCP;
* ``HOST:PORT`` — TCP, when the part after the last ``:`` parses as a
  port and the text is not a filesystem path (no ``/``);
* ``unix://PATH`` — explicit UNIX-domain path;
* anything else — a UNIX-domain socket path (the historical form).

``HOST`` may be empty (``:7533``): a server binds every interface, a
client connects to localhost.  Ephemeral ports (``PORT`` = 0) are
resolved at bind time; :meth:`Address.resolved` reports the port the
kernel picked, which is what tests and ``repro serve`` print.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

PathLike = Union[str, Path]

#: ``Address.kind`` values.
UNIX = "unix"
TCP = "tcp"


class AddressError(ValueError):
    """The address text could not be parsed into a usable endpoint."""


@dataclass(frozen=True)
class Address:
    """One serving endpoint: a UNIX socket path or a TCP host/port."""

    kind: str
    path: Optional[str] = None
    host: Optional[str] = None
    port: Optional[int] = None

    @property
    def display(self) -> str:
        """The canonical text form (what ``repro serve`` prints and
        what round-trips through :func:`parse_address`)."""
        if self.kind == UNIX:
            return str(self.path)
        return f"{self.host or ''}:{self.port}"

    def connect(self, timeout: Optional[float] = None) -> socket.socket:
        """A connected stream socket to this endpoint (client side)."""
        if self.kind == UNIX:
            if not hasattr(socket, "AF_UNIX"):  # pragma: no cover
                raise AddressError(
                    "UNIX-domain sockets are unavailable on this "
                    "platform; serve on --tcp instead")
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            try:
                sock.connect(str(self.path))
            except OSError:
                sock.close()
                raise
            return sock
        host = self.host or "127.0.0.1"
        return socket.create_connection((host, self.port),
                                        timeout=timeout)

    def __str__(self) -> str:
        return self.display


def _tcp_address(host: str, port_text: str,
                 original: str) -> Address:
    try:
        port = int(port_text)
    except ValueError:
        raise AddressError(
            f"bad TCP address {original!r}: port {port_text!r} is not "
            "an integer") from None
    if not 0 <= port <= 65535:
        raise AddressError(
            f"bad TCP address {original!r}: port must be in 0..65535")
    return Address(kind=TCP, host=host, port=port)


def parse_address(text: PathLike) -> Address:
    """Parse the user-facing address text (see the module docstring).

    Accepts :class:`~pathlib.Path` objects as UNIX paths directly, so
    existing ``Client(tmp_path / "x.sock")`` call sites keep working.
    """
    if isinstance(text, Path):
        return Address(kind=UNIX, path=str(text))
    text = str(text)
    if not text:
        raise AddressError("empty address")
    if text.startswith("unix://"):
        return Address(kind=UNIX, path=text[len("unix://"):])
    if text.startswith("tcp://"):
        rest = text[len("tcp://"):]
        host, sep, port_text = rest.rpartition(":")
        if not sep:
            raise AddressError(
                f"bad TCP address {text!r}: expected tcp://HOST:PORT")
        return _tcp_address(host, port_text, text)
    # Bare HOST:PORT is TCP as long as it cannot be a file path.
    if ":" in text and "/" not in text:
        host, _, port_text = text.rpartition(":")
        if port_text.isdigit():
            return _tcp_address(host, port_text, text)
    return Address(kind=UNIX, path=text)


def require_tcp(text: str) -> Address:
    """Parse ``text`` and insist it is a TCP endpoint (the ``--tcp``
    flag's validator)."""
    address = parse_address(text)
    if address.kind != TCP:
        raise AddressError(
            f"{text!r} is not a TCP address; expected HOST:PORT "
            "(e.g. 127.0.0.1:7533, or :7533 for every interface)")
    return address
