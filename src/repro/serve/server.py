"""The concurrent ``repro serve`` daemon: listeners, ops, scheduler.

``repro map`` pays index open, fallback construction, and worker-pool
fork on every invocation.  The daemon pays them **once**: a
:class:`MapServer` holds a live :class:`~repro.api.Mapper` (memory-
mapped index + persistent worker pool) and answers mapping requests
over a UNIX-domain socket — and, with ``--tcp``, a TCP endpoint — for
as long as it runs.

The tier has three layers (one module each):

* **listeners** (:mod:`repro.serve.listeners`) — one accept thread per
  endpoint; each accepted connection gets its own thread, bounded by
  ``max_clients`` (excess connections are answered ``busy`` and
  closed).
* **ops** (this module) — per-connection NDJSON framing and request
  validation.  Control ops (``ping``/``stats``/``shutdown``) answer
  immediately from the connection thread; mapping ops are decoded and
  validated here (a typo'd engine or format fails in microseconds,
  before touching the queue) and then submitted to the scheduler.
* **scheduler** (:mod:`repro.serve.scheduler`) — one thread draining a
  bounded queue onto the one warm mapper, coalescing compatible small
  ``map`` requests into single engine runs and demultiplexing the
  replies; a full queue is answered with a structured ``busy`` error,
  an expired per-request deadline with ``timeout``.

Wire protocol — newline-delimited JSON, one object per line, one
response line per request line; a connection may carry any number of
requests.  Operations:

``ping``
    Liveness probe.  Response carries ``pid``, ``uptime_s``, the index
    path, the config snapshot, the registered engines/formats, and the
    listening endpoints (``listeners``).
``map``
    Map workload items shipped inline.  Paired engines:
    ``{"op": "map", "pairs": [[read1, read2, name?], ...]}``;
    the single-read ``longread`` engine: ``{"op": "map", "engine":
    "longread", "reads": [[read, name?], ...]}`` — reads as ACGT
    strings either way.  Optional ``"engine"`` and ``"format"`` keys
    select any registered engine/output format **per request** against
    the one warm facade; optional ``"timeout_s"`` caps how long the
    request may wait+run (``0`` disables the server default).
    Responds with ``{"lines": [...]}`` — record lines in the requested
    format (plus header lines first when ``"header": true``; ``"sam"``
    is kept as an alias when the format is SAM) — plus per-request
    ``stats``/``elapsed_s`` and ``coalesced`` (how many requests
    shared the engine run; ``stats`` covers that whole run).
``map_file``
    Map server-side FASTQ paths and write an output file server-side:
    ``{"op": "map_file", "reads1": ..., "reads2": ..., "out": ...}``
    (``reads2`` omitted for single-read engines), plus the same
    optional ``"engine"``/``"format"``/``"timeout_s"`` keys.  The
    heavy-duty path: no reads cross the socket, and the output is
    byte-identical to an offline ``repro map`` with the same config
    (asserted in the test suite and the CI smoke job).  Never
    coalesced.
``stats``
    Cumulative mapper counters (GenPair-compatible ``mapper`` plus
    per-engine ``engines``), server totals (requests served, pairs
    mapped, per-op counts, errors, connection counts), scheduler
    totals (``scheduler``: queue depth, batches, coalesced requests,
    busy rejections, timeouts), the full process metrics registry
    snapshot (``metrics``), and ``host`` metadata.
``shutdown``
    Acknowledge, then stop the accept loops, drain the queue, and tear
    the mapper down.

Mapping requests additionally accept ``"trace": true``, which returns
a per-stage span breakdown alongside the normal response (traced
requests run solo, never coalesced, so the spans cover exactly their
own work).  Request counts and latencies are recorded per op into the
metrics registry (``serve.requests.<op>`` / ``serve.request_s.<op>``,
``serve.map_s.<engine>.<format>`` for mapping work, plus the
scheduler's queue/batch metrics).

Every response carries ``"ok"``; failures answer ``{"ok": false,
"error": <message>, "error_code": <code>}`` (see
:mod:`repro.serve.protocol` for the codes) and the connection stays
usable.  SIGTERM/SIGINT (via :func:`serve`) shut down gracefully:
in-flight requests finish, queued ones answer ``shutting_down``, the
socket file is unlinked, worker pools are closed.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Union

from ..obs import get_registry, host_metadata
from ..util.sync import maybe_sanitize_lock
from . import protocol
from .address import TCP, Address, parse_address
from .listeners import (ServerError, TcpListener, UnixListener,
                        bound_endpoints)
from .protocol import (E_BAD_REQUEST, E_BUSY, E_INTERNAL, E_OVERSIZED,
                       E_SHUTTING_DOWN, E_TIMEOUT, E_UNKNOWN_OP,
                       RequestError, ServerStats, decode_pairs,
                       decode_reads, error_reply, request_timeout_s)
from .scheduler import MapTask, Scheduler, ServeSettings

PathLike = Union[str, "os.PathLike[str]"]

#: The backoff hint shipped with ``busy`` replies.
RETRY_AFTER_S = 0.05


class MapServer:
    """Serve mapping requests from one warm :class:`~repro.api.Mapper`.

    Connections are handled in threads (one accept thread per
    listener, one thread per connection, at most
    ``settings.max_clients`` at once); mapping work funnels through
    the :class:`~repro.serve.scheduler.Scheduler`'s bounded queue onto
    the one warm mapper, so a slow or idle client never blocks another
    client's requests — only the *mapping* itself is serialized, and
    compatible small requests share engine runs.
    """

    def __init__(self, mapper, socket_path: Optional[PathLike] = None,
                 backlog: int = 16, *,
                 tcp: Optional[Union[str, Address]] = None,
                 settings: Optional[ServeSettings] = None) -> None:
        self.mapper = mapper
        self.settings = (settings if settings is not None
                         else ServeSettings()).validate()
        self.stats = ServerStats()
        self.scheduler = Scheduler(mapper, self.settings)
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._threads_lock = maybe_sanitize_lock("serve.conns")
        self.socket_path: Optional[str] = None
        self.listeners: list = []
        try:
            if socket_path is not None:
                listener = UnixListener(str(socket_path), backlog)
                self.socket_path = listener.path
                self.listeners.append(listener)
            if tcp is not None:
                if isinstance(tcp, str):
                    tcp = parse_address(tcp)
                if tcp.kind != TCP:
                    raise ServerError(
                        f"tcp endpoint {tcp.display!r} is not a TCP "
                        "address")
                self.listeners.append(TcpListener(tcp, backlog))
            if not self.listeners:
                raise ServerError("no endpoint to serve: pass a UNIX "
                                  "socket path and/or a TCP address")
            # Fork the worker pool now, while still single-threaded,
            # so the first request finds it warm.
            mapper.warm_up()
        except BaseException:
            for listener in self.listeners:
                listener.close()
            raise

    @property
    def tcp_port(self) -> Optional[int]:
        """The bound TCP port (resolved even for ``--tcp :0``), or
        ``None`` when only the UNIX socket is served."""
        for listener in self.listeners:
            if listener.kind == TCP:
                return listener.port
        return None

    # -- main loop -----------------------------------------------------

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`request_shutdown`."""
        self.scheduler.start()
        acceptors = []
        try:
            for listener in self.listeners:
                thread = threading.Thread(
                    target=self._accept_loop, args=(listener,),
                    name=f"repro-serve-accept-{listener.kind}",
                    daemon=True)
                thread.start()
                acceptors.append(thread)
            self._stop.wait()
        finally:
            self._stop.set()
            self.close()
            for thread in acceptors:
                thread.join(timeout=5.0)

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (signal-handler safe)."""
        self._stop.set()

    def close(self) -> None:
        """Stop accepting, finish in-flight requests, release resources."""
        self._stop.set()
        for listener in self.listeners:
            listener.close()
        # The scheduler finishes the in-flight batch, answers queued
        # requests with shutting_down, and closes the mapper under the
        # map lock — so the mapper (and its worker pool) is never torn
        # down under an active run.
        self.scheduler.close()
        with self._threads_lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=5.0)

    # -- connection handling -------------------------------------------

    def _accept_loop(self, listener) -> None:
        while not self._stop.is_set():
            try:
                conn = listener.accept()
            except OSError:
                return  # listener closed under us during shutdown
            if conn is None:
                continue
            if not self.stats.connection_opened(
                    limit=self.settings.max_clients):
                self._refuse_connection(conn)
                continue
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="repro-serve-conn", daemon=True)
            with self._threads_lock:
                self._threads.append(thread)
                self._threads = [t for t in self._threads
                                 if t.is_alive() or t is thread]
            thread.start()

    def _refuse_connection(self, conn) -> None:
        """Over the client limit: one ``busy`` line, then close."""
        self._note_busy()
        reply = error_reply(
            E_BUSY,
            f"daemon is serving {self.settings.max_clients} clients "
            "already; retry shortly",
            retry_after_s=RETRY_AFTER_S)
        try:
            conn.sendall(json.dumps(reply).encode() + b"\n")
        except OSError:
            pass
        finally:
            conn.close()

    def _serve_connection(self, conn) -> None:
        try:
            with conn:
                reader = conn.makefile("rb")
                try:
                    self._serve_requests(conn, reader)
                finally:
                    reader.close()
        finally:
            self.stats.connection_closed()

    def _serve_requests(self, conn, reader) -> None:
        while not self._stop.is_set():
            # Read the limit through the module so tests can shrink it.
            limit = protocol.MAX_REQUEST_BYTES
            try:
                line = reader.readline(limit)
            except (OSError, ValueError):
                return  # client went away mid-request
            if not line:
                return
            if len(line) >= limit and not line.endswith(b"\n"):
                # A partial read of an over-limit request: the rest
                # of the line is still in the pipe, so answering and
                # reading on would pair later responses with the
                # wrong requests.  Reject once and drop the
                # connection.
                self._count_error()
                self._send(conn, error_reply(
                    E_OVERSIZED,
                    f"request exceeds {limit} bytes; use map_file "
                    "for large inputs"))
                return
            response = self._dispatch_line(line)
            if not self._send(conn, response):
                return
            if response.get("op") == "shutdown" \
                    and response.get("ok"):
                self.request_shutdown()
                return

    @staticmethod
    def _send(conn, response: Dict[str, Any]) -> bool:
        try:
            conn.sendall(json.dumps(response).encode() + b"\n")
        except (OSError, ValueError):
            return False  # client disconnected; result is discarded
        return True

    def _count_error(self) -> None:
        """One failed request: the server total and, when metrics are
        on, the ``serve.errors`` counter (every error path goes
        through here so the two never drift)."""
        self.stats.count_error()
        obs = get_registry()
        if obs.enabled:
            obs.counter("serve.errors").inc()

    def _note_busy(self) -> None:
        obs = get_registry()
        if obs.enabled:
            obs.counter("serve.busy").inc()

    def _dispatch_line(self, line: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            self._count_error()
            return error_reply(E_BAD_REQUEST, f"bad request: {exc}")
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) \
            if isinstance(op, str) and not op.startswith("_") else None
        if handler is None:
            self._count_error()
            return error_reply(
                E_UNKNOWN_OP,
                f"unknown op {op!r}; available: map, map_file, ping, "
                "shutdown, stats", op=op)
        start = time.perf_counter()
        try:
            response = handler(request)
        except Exception as exc:  # keep serving after a bad request
            self._count_error()
            code = E_BAD_REQUEST \
                if isinstance(exc, (ValueError, LookupError)) \
                else E_INTERNAL
            return error_reply(code, f"{type(exc).__name__}: {exc}",
                               op=op)
        if not response.get("ok", True):
            self._count_error()
            response.setdefault("op", op)
            return response
        elapsed = time.perf_counter() - start
        obs = get_registry()
        if obs.enabled:
            obs.counter(f"serve.requests.{op}").inc()
            obs.histogram(f"serve.request_s.{op}").observe(elapsed)
        response.setdefault("ok", True)
        response["op"] = op
        response["elapsed_s"] = round(elapsed, 6)
        return response

    # -- control ops (answered from the connection thread) -------------

    def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from ..api.registry import ENGINES, OUTPUT_FORMATS

        self.stats.record("ping")
        index = self.mapper.index
        return {"pid": os.getpid(),
                "uptime_s": round(self.stats.uptime_s, 3),
                "index": index.path if index is not None else None,
                "workers": self.mapper.config.workers,
                "engine": self.mapper.config.engine,
                "engines": list(ENGINES.names()),
                "formats": list(OUTPUT_FORMATS.names()),
                "listeners": list(bound_endpoints(self.listeners)),
                "config": self.mapper.config.to_dict()}

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from ..api.engines import stats_dict

        self.stats.record("stats")
        return {"server": self.stats.to_dict(),
                "scheduler": self.scheduler.totals(),
                "mapper": stats_dict(self.mapper.stats),
                "engines": self.mapper.engine_stats(),
                "metrics": get_registry().snapshot(),
                "host": host_metadata()}

    def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.stats.record("shutdown")
        return {"goodbye": True}

    # -- mapping ops (validated here, executed by the scheduler) -------

    @staticmethod
    def _workload(request: Dict[str, Any]) -> tuple:
        """The per-request engine/format overrides, validated as names.

        ``None`` means "the facade's configured default" — the one
        warm facade resolves names to (lazily-built, reused) engine
        instances itself.  Both names are checked against their
        registries *here*, before the request touches the queue, so a
        typo'd ``format`` fails in microseconds instead of after the
        whole request has been mapped.
        """
        from ..api.registry import ENGINES, OUTPUT_FORMATS

        engine = request.get("engine")
        if engine is not None and not isinstance(engine, str):
            raise RequestError('"engine" must be an engine name '
                               "string")
        fmt = request.get("format")
        if fmt is not None and not isinstance(fmt, str):
            raise RequestError('"format" must be a format name string')
        if engine is not None:
            ENGINES.require(engine)
        if fmt is not None:
            OUTPUT_FORMATS.require(fmt)
        return engine, fmt

    def _op_map(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from ..api.engines import INPUT_SINGLE

        engine_name, fmt = self._workload(request)
        engine = self.mapper.engine(engine_name)
        if engine.input_kind == INPUT_SINGLE:
            if "pairs" in request:
                raise RequestError(
                    f'engine {engine.name!r} maps single reads; '
                    'send "reads", not "pairs"')
            decoded = decode_reads(request.get("reads"))
        else:
            if "reads" in request:
                raise RequestError(
                    f'engine {engine.name!r} maps read pairs; '
                    'send "pairs", not "reads"')
            decoded = decode_pairs(request.get("pairs"))
        format_name = fmt if fmt is not None \
            else self.mapper.config.output_format
        task = MapTask(
            "map", engine.name, format_name, decoded, len(decoded),
            header=bool(request.get("header", False)),
            trace=bool(request.get("trace")),
            timeout_s=request_timeout_s(
                request, self.settings.request_timeout_s))
        return self._submit_and_wait(task)

    def _op_map_file(self, request: Dict[str, Any]) -> Dict[str, Any]:
        engine_name, fmt = self._workload(request)
        for key in ("reads1", "out"):
            if not isinstance(request.get(key), str):
                raise RequestError(f'"{key}" must be a path string')
        reads2 = request.get("reads2")
        if reads2 is not None and not isinstance(reads2, str):
            raise RequestError('"reads2" must be a path string (omit '
                               "it for single-read engines)")
        engine = self.mapper.engine(engine_name)
        format_name = fmt if fmt is not None \
            else self.mapper.config.output_format
        task = MapTask(
            "map_file", engine.name, format_name,
            (request["reads1"], reads2, request["out"]), 0,
            trace=bool(request.get("trace")),
            timeout_s=request_timeout_s(
                request, self.settings.request_timeout_s))
        return self._submit_and_wait(task)

    def _submit_and_wait(self, task: MapTask) -> Dict[str, Any]:
        """Queue a mapping task and block for its reply, enforcing the
        deadline from the waiting side too (the scheduler may be deep
        in an earlier batch when it expires)."""
        if not self.scheduler.submit(task):
            if self.scheduler.closing:
                return error_reply(E_SHUTTING_DOWN,
                                   "daemon is shutting down",
                                   op=task.op)
            self._note_busy()
            return error_reply(
                E_BUSY,
                f"request queue is full "
                f"({self.settings.max_queue} waiting); retry shortly",
                op=task.op, retry_after_s=RETRY_AFTER_S,
                queue_depth=self.scheduler.queue_depth())
        reply = task.wait(task.remaining_s())
        if reply is None:
            stage = task.abandon()
            if stage is None:
                # The reply landed in the race window; take it.
                reply = task.wait(None)
            else:
                self.scheduler.note_timeout()
                reply = error_reply(
                    E_TIMEOUT,
                    f"request deadline expired while {stage} (raise "
                    "timeout_s, or retry when the daemon is idle)",
                    op=task.op, stage=stage)
        if reply.get("ok", True):
            self.stats.record(task.op, pairs=task.items)
        return reply


def serve(mapper, socket_path: Optional[PathLike] = None,
          install_signal_handlers: bool = True, *,
          tcp: Optional[Union[str, Address]] = None,
          settings: Optional[ServeSettings] = None) -> MapServer:
    """Run a :class:`MapServer` until shutdown (the CLI entry point).

    Blocks until shutdown; SIGTERM/SIGINT trigger the same graceful
    path as a ``shutdown`` request.  Returns the (closed) server so
    callers can read its final :attr:`MapServer.stats`.
    """
    server = MapServer(mapper, socket_path, tcp=tcp,
                       settings=settings)
    # Signal handlers can only be installed from the main thread; a
    # server hosted in a background thread (tests, embedding) relies
    # on shutdown requests instead.
    if install_signal_handlers \
            and threading.current_thread() is threading.main_thread():
        import signal

        def _graceful(signum, frame):
            server.request_shutdown()

        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
    server.serve_forever()
    return server
