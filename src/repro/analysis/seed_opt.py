"""Seed-length optimization: the §3.2 design-space exploration.

The paper "determine[s] an optimal seed length that maximizes the exact
match rate" before fixing 50bp.  This module reruns that exploration on
any dataset: for each candidate seed length it measures the Observation-1
quantity (fraction of pairs with at least one exact seed per read at the
truth locus) and recommends the *longest* seed that keeps the rate above
a target — longer seeds mean fewer spurious locations per query
(Observation 2's pressure), shorter seeds survive more errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..core.seeding import partition_read
from ..genome.reference import ReferenceGenome
from ..genome.sequence import reverse_complement
from ..genome.simulate import SimulatedPair


@dataclass(frozen=True)
class SeedLengthCurve:
    """Exact-seed rate for each candidate seed length."""

    rates: Dict[int, float]  # seed length -> pair rate in [0, 1]
    pairs: int

    def recommend(self, min_rate: float = 0.85) -> int:
        """Longest seed length whose rate stays at or above the target.

        Falls back to the best-rate length when nothing meets the
        target.
        """
        viable = [length for length, rate in self.rates.items()
                  if rate >= min_rate]
        if viable:
            return max(viable)
        return max(self.rates, key=lambda length: self.rates[length])

    def as_rows(self) -> Tuple[Tuple[int, float], ...]:
        """(seed length, rate%) rows, sorted, for reports."""
        return tuple((length, 100.0 * self.rates[length])
                     for length in sorted(self.rates))


def _has_exact_seed(reference: ReferenceGenome, codes: np.ndarray,
                    chromosome: str, start: int, seed_length: int,
                    slack: int = 8) -> bool:
    chrom_len = reference.length(chromosome)
    for seed in partition_read(codes, seed_length):
        for offset in range(-slack, slack + 1):
            pos = start + seed.read_offset + offset
            if pos < 0 or pos + seed_length > chrom_len:
                continue
            window = reference.fetch(chromosome, pos, pos + seed_length)
            if np.array_equal(window, seed.codes):
                return True
    return False


def seed_length_curve(reference: ReferenceGenome,
                      pairs: Sequence[SimulatedPair],
                      lengths: Sequence[int] = (25, 30, 40, 50, 60, 75)
                      ) -> SeedLengthCurve:
    """Measure the Observation-1 rate for each candidate seed length."""
    rates: Dict[int, float] = {}
    for seed_length in lengths:
        hits = 0
        for pair in pairs:
            ok1 = _has_exact_seed(reference, pair.read1.codes,
                                  pair.read1.chromosome,
                                  pair.read1.ref_start, seed_length)
            if not ok1:
                continue
            rc2 = reverse_complement(pair.read2.codes)
            if _has_exact_seed(reference, rc2, pair.read2.chromosome,
                               pair.read2.ref_start, seed_length):
                hits += 1
        rates[seed_length] = hits / max(1, len(pairs))
    return SeedLengthCurve(rates=rates, pairs=len(pairs))
