"""Edit-pattern analysis: Table 1, Fig 2 score CDF, Observation 3.

Aligns each simulated read at its ground-truth window with full affine DP,
then (a) classifies the resulting CIGAR into the simple/complex vocabulary
of §3.4, (b) records the *minimum* alignment score of each pair — Fig 2
plots the CDF of that minimum — and (c) reports the fraction of pairs
whose edits are solely mismatches or one consecutive indel run
(Observation 3: 69.9%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..align.banded import align_banded
from ..align.scoring import DEFAULT_SCHEME, HIGH_QUALITY_THRESHOLD, \
    ScoringScheme
from ..genome.cigar import Cigar
from ..genome.reference import ReferenceGenome
from ..genome.sequence import reverse_complement
from ..genome.simulate import SimulatedPair


@dataclass(frozen=True)
class PairEditRecord:
    """Per-pair outcome: min score and whether the edits are simple."""

    min_score: int
    simple: bool


@dataclass(frozen=True)
class EditPatternReport:
    """Aggregate §3.4 statistics over a dataset."""

    records: Tuple[PairEditRecord, ...]
    threshold: int

    @property
    def simple_fraction_pct(self) -> float:
        """Observation 3: % of pairs with only simple edits (paper 69.9%)."""
        if not self.records:
            return 0.0
        simple = sum(1 for r in self.records if r.simple)
        return 100.0 * simple / len(self.records)

    @property
    def above_threshold_pct(self) -> float:
        """% of pairs whose min score clears the §3.4 threshold."""
        if not self.records:
            return 0.0
        above = sum(1 for r in self.records
                    if r.min_score >= self.threshold)
        return 100.0 * above / len(self.records)

    def score_cdf(self, scores: Sequence[int]
                  ) -> List[Tuple[int, float]]:
        """Fig 2 series: P(min pair score <= s) for each requested s."""
        values = np.array([r.min_score for r in self.records])
        return [(s, float(np.mean(values <= s))) for s in scores]


def _truth_alignment_score(reference: ReferenceGenome, codes: np.ndarray,
                           chromosome: str, start: int,
                           scheme: ScoringScheme,
                           pad: int = 24) -> Tuple[int, Cigar]:
    chrom_len = reference.length(chromosome)
    w_start = max(0, start - pad)
    w_end = min(chrom_len, start + len(codes) + pad)
    window = reference.fetch(chromosome, w_start, w_end)
    result = align_banded(codes, window, scheme=scheme,
                          diagonal=start - w_start, bandwidth=pad)
    return result.score, result.cigar


def classify_simple(cigar: Cigar) -> bool:
    """Is the edit structure within Light Alignment's vocabulary?"""
    return cigar.classify_edits() in ("exact", "mismatch_only",
                                      "single_indel")


def analyze_edit_patterns(reference: ReferenceGenome,
                          pairs: Sequence[SimulatedPair],
                          scheme: ScoringScheme = DEFAULT_SCHEME,
                          threshold: int = HIGH_QUALITY_THRESHOLD
                          ) -> EditPatternReport:
    """Run truth-window DP over all pairs and aggregate §3.4 statistics."""
    records: List[PairEditRecord] = []
    for pair in pairs:
        score1, cigar1 = _truth_alignment_score(
            reference, pair.read1.codes, pair.read1.chromosome,
            pair.read1.ref_start, scheme)
        score2, cigar2 = _truth_alignment_score(
            reference, reverse_complement(pair.read2.codes),
            pair.read2.chromosome, pair.read2.ref_start, scheme)
        simple = classify_simple(cigar1) and classify_simple(cigar2)
        records.append(PairEditRecord(min_score=min(score1, score2),
                                      simple=simple))
    return EditPatternReport(records=tuple(records), threshold=threshold)
