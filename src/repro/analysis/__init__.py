"""Profiling analyses reproducing the paper's §3 observations."""

from .breakdown import BreakdownReport, profile_breakdown
from .edit_patterns import (EditPatternReport, PairEditRecord,
                            analyze_edit_patterns, classify_simple)
from .seed_opt import SeedLengthCurve, seed_length_curve
from .exact_match import (ExactMatchReport, SeedLocationReport,
                          profile_exact_matches, profile_seed_locations)

__all__ = [
    "BreakdownReport", "EditPatternReport", "ExactMatchReport",
    "PairEditRecord", "SeedLocationReport", "analyze_edit_patterns",
    "SeedLengthCurve", "seed_length_curve",
    "classify_simple", "profile_breakdown", "profile_exact_matches",
    "profile_seed_locations",
]
