"""Stage-time breakdown of the baseline mapper (Fig 1).

Runs the baseline seed-chain-align mapper over a paired dataset with its
stage timer armed and reports the percentage of wall-clock time per stage.
The paper's finding — chaining + alignment dominate at 83-85% on
paired-end data — is what motivates the whole design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..genome.reference import ReferenceGenome
from ..genome.simulate import SimulatedPair
from ..mapper.mm2 import Mm2LikeMapper
from ..mapper.profiler import StageTimer


@dataclass(frozen=True)
class BreakdownReport:
    """Fig 1 data for one dataset."""

    dataset: str
    pairs: int
    percent_by_stage: Dict[str, float]
    total_seconds: float

    @property
    def dp_share_pct(self) -> float:
        """Chaining + alignment share (paper: 83.4-84.9%)."""
        return (self.percent_by_stage.get("chaining", 0.0)
                + self.percent_by_stage.get("alignment", 0.0))


def profile_breakdown(reference: ReferenceGenome,
                      pairs: Sequence[SimulatedPair],
                      dataset: str = "dataset",
                      mapper: Mm2LikeMapper = None) -> BreakdownReport:
    """Map all pairs with a fresh timer and report stage percentages."""
    if mapper is None:
        mapper = Mm2LikeMapper(reference)
    mapper.timer = StageTimer()
    for pair in pairs:
        mapper.map_pair(pair.read1.codes, pair.read2.codes, pair.name)
    return BreakdownReport(dataset=dataset, pairs=len(pairs),
                           percent_by_stage=mapper.timer
                           .breakdown_percent(),
                           total_seconds=mapper.timer.total)
