"""Exact-match profiling: §3.2 rates and Observations 1-2.

Reproduces the paper's motivation measurements:

* the fraction of single-end reads that match the reference exactly over
  their full length (paper: 55.7%), and the fraction of pairs where *both*
  reads do (paper: 36.8%) — the drop that motivates partitioned seeding;
* Observation 1: the fraction of pairs where at least one non-overlapping
  50bp seed per read matches exactly (paper: 84.9-86.2%);
* Observation 2: the mean number of reference locations per 50bp seed
  (paper: 9.3-9.6), measured through a SeedMap.

Full-read and per-seed exactness are checked against the read's ground-
truth locus (simulated reads carry it), which avoids indexing 150-mers;
a read with sequencing errors matching *elsewhere* exactly is vanishingly
rare, so this matches the index-based definition in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.seeding import partition_read
from ..core.seedmap import SeedMap
from ..genome.reference import ReferenceGenome
from ..genome.sequence import reverse_complement
from ..genome.simulate import SimulatedPair, SimulatedRead


@dataclass(frozen=True)
class ExactMatchReport:
    """Results of exact-match profiling over one dataset."""

    reads_total: int
    reads_exact: int
    pairs_total: int
    pairs_exact: int
    pairs_with_seed_per_read: int

    @property
    def single_end_exact_pct(self) -> float:
        """% of reads exactly matching the reference (paper: 55.7%)."""
        return 100.0 * self.reads_exact / max(1, self.reads_total)

    @property
    def paired_end_exact_pct(self) -> float:
        """% of pairs where both reads match exactly (paper: 36.8%)."""
        return 100.0 * self.pairs_exact / max(1, self.pairs_total)

    @property
    def seed_per_read_pct(self) -> float:
        """Observation 1: >=1 exact seed in each read (paper: ~86%)."""
        return 100.0 * self.pairs_with_seed_per_read / max(
            1, self.pairs_total)


def _read_is_exact(reference: ReferenceGenome, codes: np.ndarray,
                   chromosome: str, start: int, slack: int = 8) -> bool:
    """Does the read match the reference exactly near its true start?"""
    chrom_len = reference.length(chromosome)
    length = len(codes)
    for offset in range(-slack, slack + 1):
        pos = start + offset
        if pos < 0 or pos + length > chrom_len:
            continue
        window = reference.fetch(chromosome, pos, pos + length)
        if np.array_equal(window, codes):
            return True
    return False


def _has_exact_seed(reference: ReferenceGenome, codes: np.ndarray,
                    chromosome: str, start: int, seed_length: int,
                    slack: int = 8) -> bool:
    """Observation 1 predicate: any of the three seeds exactly matches."""
    chrom_len = reference.length(chromosome)
    for seed in partition_read(codes, seed_length):
        for offset in range(-slack, slack + 1):
            pos = start + seed.read_offset + offset
            if pos < 0 or pos + seed_length > chrom_len:
                continue
            window = reference.fetch(chromosome, pos, pos + seed_length)
            if np.array_equal(window, seed.codes):
                return True
    return False


def profile_exact_matches(reference: ReferenceGenome,
                          pairs: Sequence[SimulatedPair],
                          seed_length: int = 50) -> ExactMatchReport:
    """Profile full-read and per-seed exact-match rates over pairs."""
    reads_exact = 0
    pairs_exact = 0
    pairs_with_seed = 0
    for pair in pairs:
        read1 = pair.read1
        read2 = pair.read2
        r1_exact = _read_is_exact(reference, read1.codes,
                                  read1.chromosome, read1.ref_start)
        r2_codes = reverse_complement(read2.codes)
        r2_exact = _read_is_exact(reference, r2_codes, read2.chromosome,
                                  read2.ref_start)
        reads_exact += int(r1_exact) + int(r2_exact)
        if r1_exact and r2_exact:
            pairs_exact += 1
        seed1 = _has_exact_seed(reference, read1.codes, read1.chromosome,
                                read1.ref_start, seed_length)
        seed2 = _has_exact_seed(reference, r2_codes, read2.chromosome,
                                read2.ref_start, seed_length)
        if seed1 and seed2:
            pairs_with_seed += 1
    return ExactMatchReport(reads_total=2 * len(pairs),
                            reads_exact=reads_exact,
                            pairs_total=len(pairs),
                            pairs_exact=pairs_exact,
                            pairs_with_seed_per_read=pairs_with_seed)


@dataclass(frozen=True)
class SeedLocationReport:
    """Observation 2: reference locations per queried seed."""

    seeds_queried: int
    seeds_hit: int
    locations_total: int

    @property
    def mean_locations_per_seed(self) -> float:
        """Mean over seeds with at least one hit (paper: 9.3-9.6)."""
        return self.locations_total / max(1, self.seeds_hit)


def profile_seed_locations(seedmap: SeedMap,
                           reads: Sequence[SimulatedRead],
                           seed_length: Optional[int] = None
                           ) -> SeedLocationReport:
    """Measure per-seed location counts through a SeedMap."""
    seed_length = seed_length or seedmap.seed_length
    queried = hit = total = 0
    for read in reads:
        for seed in partition_read(read.codes, seed_length):
            queried += 1
            count = seedmap.location_count(seed.hash_value)
            if count:
                hit += 1
                total += count
    return SeedLocationReport(seeds_queried=queried, seeds_hit=hit,
                              locations_total=total)
