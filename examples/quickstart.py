"""Quickstart: map simulated paired-end reads with GenPair.

Builds a small synthetic reference, simulates GIAB-like 2x150bp read
pairs, maps them with the GenPair pipeline (SeedMap -> partitioned
seeding -> paired-adjacency filtering -> light alignment), and writes the
alignments to a SAM file.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import GenPairPipeline, SeedMap
from repro.genome import (ErrorModel, ReadSimulator, generate_reference,
                          write_sam)


def main() -> None:
    rng = np.random.default_rng(42)

    print("1. Generating a 300kb synthetic reference genome ...")
    reference = generate_reference(rng, (200_000, 100_000))

    print("2. Building SeedMap (50bp seeds, filter threshold 500) ...")
    seedmap = SeedMap.build(reference)
    stats = seedmap.stats
    print(f"   {stats.total_positions:,} positions indexed, "
          f"{stats.distinct_seeds:,} distinct seeds, "
          f"{seedmap.memory_bytes / 1e6:.1f} MB modeled footprint")

    print("3. Simulating 500 GIAB-like read pairs ...")
    simulator = ReadSimulator(reference,
                              error_model=ErrorModel.giab_like(),
                              seed=7)
    pairs = simulator.simulate_pairs(500)

    print("4. Mapping with the GenPair pipeline ...")
    pipeline = GenPairPipeline(reference, seedmap=seedmap)
    results = pipeline.map_pairs(pairs)

    pstats = pipeline.stats
    print(f"   light-aligned: {pstats.light_aligned_pct:.1f}% of pairs")
    print(f"   DP fallback at candidates: "
          f"{pstats.light_fallback_pct:.1f}%")
    print(f"   mapped by GenPair overall: "
          f"{pstats.genpair_mapped_pct:.1f}%")

    correct = sum(
        1 for pair, result in zip(pairs, results)
        if result.mapped and result.record1.chromosome ==
        pair.read1.chromosome
        and abs(result.record1.position - pair.read1.ref_start) <= 30)
    mapped = sum(1 for result in results if result.mapped)
    print(f"   correct placements: {correct}/{mapped} mapped pairs")

    print("5. First three alignments:")
    for result in results[:3]:
        record = result.record1
        print(f"   {record.query_name}: {record.chromosome}:"
              f"{record.position} {record.strand} {record.cigar} "
              f"score={record.score} via {record.method}")

    records = []
    for result in results:
        records.extend([result.record1, result.record2])
    count = write_sam("quickstart_output.sam", records,
                      reference=reference)
    print(f"6. Wrote {count} records to quickstart_output.sam")


if __name__ == "__main__":
    main()
