"""Streaming through the persistent worker pool: fork once, map forever.

Simulates a dataset to disk, then serves it two ways — the in-process
streaming engine, and the persistent worker-pool streaming executor
(``map_stream(workers=N)``): one long-lived pool of forked workers is
fed chunk by chunk with double-buffered dispatch while a read-ahead
thread keeps the FASTQ reader ahead of the workers, and an
ordered-merge collector hands chunks to the SAM writer in input order
while later chunks are still being mapped.  The two SAM files are
byte-identical.

Run:  python examples/streaming_workers.py
"""

import os
import time

import numpy as np

from repro.core import GenPairPipeline
from repro.genome import (ErrorModel, ReadSimulator, SamWriter,
                          generate_reference, iter_pairs, write_fasta,
                          write_fastq)

#: At least two workers so the persistent pool really runs (on a
#: single-CPU box it demonstrates correctness, not speedup).
WORKERS = max(2, min(4, os.cpu_count() or 1))


def main() -> None:
    rng = np.random.default_rng(99)

    print("1. Simulating a 150kb reference and 600 read pairs ...")
    reference = generate_reference(rng, (100_000, 50_000))
    simulator = ReadSimulator(reference,
                              error_model=ErrorModel.giab_like(),
                              seed=13)
    pairs = simulator.simulate_pairs(600)
    write_fasta("stream_ref.fa", reference)
    write_fastq("stream_1.fq",
                ((p.read1.name, p.read1.codes) for p in pairs))
    write_fastq("stream_2.fq",
                ((p.read2.name, p.read2.codes) for p in pairs))

    print("2. Streaming in-process (workers=1) ...")
    solo = GenPairPipeline(reference)
    start = time.perf_counter()
    with SamWriter("stream_solo.sam", reference=reference) as writer:
        writer.drain(solo.map_stream(
            iter_pairs("stream_1.fq", "stream_2.fq"), chunk_size=64))
    solo_s = time.perf_counter() - start
    print(f"   {solo.stats.pairs_total} pairs in {solo_s:.2f}s "
          f"({solo.stats.pairs_total / solo_s:,.0f} pairs/s)")

    print(f"3. Streaming through a persistent pool of {WORKERS} "
          "forked workers ...")
    pooled = GenPairPipeline(reference, seedmap=solo.seedmap)
    start = time.perf_counter()
    with SamWriter("stream_pool.sam", reference=reference) as writer:
        writer.drain(pooled.map_stream(
            iter_pairs("stream_1.fq", "stream_2.fq"), chunk_size=64,
            workers=WORKERS))
    pool_s = time.perf_counter() - start
    print(f"   {pooled.stats.pairs_total} pairs in {pool_s:.2f}s "
          f"({pooled.stats.pairs_total / pool_s:,.0f} pairs/s) — "
          "pool forked once, chunks merged in input order")

    identical = (open("stream_solo.sam").read()
                 == open("stream_pool.sam").read())
    print(f"4. SAM outputs byte-identical: {identical}")
    assert identical
    assert solo.stats == pooled.stats
    print(f"   stats identical too (light-aligned "
          f"{pooled.stats.light_aligned_pct:.1f}%)")


if __name__ == "__main__":
    main()
