"""Long-read mapping via interleaved pseudo-pairs (§4.7).

Simulates PacBio-HiFi-like long reads (scaled down in length), maps them
with the GenPair front end plus Location Voting and banded-DP finishing,
and reports placement accuracy.

Run:  python examples/long_read_mapping.py
"""

import numpy as np

from repro.core import LongReadMapper, SeedMap
from repro.genome import ReadSimulator, generate_reference
from repro.util import format_table


def main() -> None:
    rng = np.random.default_rng(11)

    print("1. Reference + SeedMap ...")
    reference = generate_reference(rng, (250_000,))
    seedmap = SeedMap.build(reference)

    print("2. Simulating 20 HiFi-like long reads (~4kb, 0.5% error) ...")
    simulator = ReadSimulator(reference, seed=13)
    reads = simulator.simulate_long_reads(20, length_mean=4000,
                                          length_sd=800,
                                          error_rate=0.005)

    print("3. Mapping with pseudo-pairs + Location Voting ...")
    mapper = LongReadMapper(reference, seedmap=seedmap)
    rows = []
    correct = 0
    for read in reads:
        record = mapper.map_read(read.codes, read.name)
        if record.mapped:
            delta = record.position - read.ref_start
            ok = abs(delta) <= 100
            correct += ok
            rows.append((read.name, len(read.codes), record.chromosome,
                         record.position, delta, "yes" if ok else "NO"))
        else:
            rows.append((read.name, len(read.codes), "-", "-", "-",
                         "unmapped"))
    print(format_table(("read", "length", "chrom", "position",
                        "delta vs truth", "correct"), rows))
    print(f"\n{correct}/{len(reads)} reads placed correctly; "
          f"{mapper.stats.pseudo_pairs} pseudo-pairs evaluated, "
          f"{mapper.stats.dp_cells:,} DP cells spent "
          f"(long reads always finish with DP, §4.7)")


if __name__ == "__main__":
    main()
