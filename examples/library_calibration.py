"""Calibrating GenPair to a sequencing library.

Shows the three data-driven knobs a deployment would tune:

1. **Δ (paired-adjacency threshold)** — estimated from the library's
   insert-size distribution on a mapped sample (`calibrate_delta`);
2. **seed length** — the §3.2 exploration: exact-seed rate versus seed
   length on this dataset (`seed_length_curve`);
3. **pre-filtering** — the SHD + Light Alignment combination from the
   paper's future-work note, with its measured work savings.

Run:  python examples/library_calibration.py
"""

import numpy as np

from repro.analysis import seed_length_curve
from repro.core import GenPairConfig, GenPairPipeline, SeedMap, \
    calibrate_delta
from repro.filters import FilteredLightAligner
from repro.genome import (ErrorModel, PairedEndProfile, ReadSimulator,
                          generate_reference, random_sequence)
from repro.util import format_table


def main() -> None:
    rng = np.random.default_rng(99)
    reference = generate_reference(rng, (150_000,))
    seedmap = SeedMap.build(reference)

    # A library with an unusual geometry: 500 +/- 60 inserts.
    simulator = ReadSimulator(
        reference, error_model=ErrorModel.giab_like(),
        profile=PairedEndProfile(insert_mean=500.0, insert_sd=60.0),
        seed=100)
    sample = simulator.simulate_pairs(150)

    print("1. Δ calibration from a mapped sample")
    pipeline = GenPairPipeline(reference, seedmap=seedmap,
                               config=GenPairConfig(delta=2000))
    estimate = calibrate_delta(pipeline, sample)
    print(f"   insert size: {estimate.mean:.0f} +/- {estimate.sd:.0f} "
          f"({estimate.samples} pairs)")
    print(f"   Δ retuned: 2000 -> {pipeline.config.delta}")

    print("\n2. Seed-length exploration (§3.2)")
    curve = seed_length_curve(reference, sample[:80],
                              lengths=(30, 40, 50, 60, 75))
    print(format_table(("seed bp", "pairs with exact seed/read %"),
                       [(length, f"{rate:.1f}")
                        for length, rate in curve.as_rows()]))
    print(f"   recommended: {curve.recommend(min_rate=0.85)}bp "
          "(longest above the 85% Observation-1 bar)")

    print("\n3. SHD pre-filter in front of Light Alignment (§8)")
    combo = FilteredLightAligner()
    for pair in sample[:100]:
        read = pair.read1.codes
        chrom_len = reference.length(pair.read1.chromosome)
        start = max(8, min(pair.read1.ref_start, chrom_len - 158))
        window = reference.fetch(pair.read1.chromosome, start - 8,
                                 min(chrom_len, start + 158))
        combo.align(read, window, 8)                     # true locus
        combo.align(read, random_sequence(rng, len(window)), 8)  # junk
    stats = combo.stats
    print(f"   {stats.candidates_seen} candidates screened, "
          f"{stats.filtered_out} rejected by SHD "
          f"({100 * stats.rejection_rate:.0f}%), "
          f"{stats.light_attempts} light alignments actually run")


if __name__ == "__main__":
    main()
