"""One sample, three engines, three output formats — one facade.

Simulates a reference plus a paired-end sample and a long-read sample,
then maps everything through a single engine-polymorphic
:class:`repro.api.Mapper`:

* ``genpair``  — the paper's paired-end pipeline (the default engine);
* ``mm2``     — the minimizer seed-chain-align baseline (same pairs);
* ``longread`` — pseudo-pair Location Voting over the long reads,
  sharing the facade's SeedMap.

Every engine emits the same ``MappingResult`` record, so the same
``write``/``lines`` calls produce SAM, PAF, and JSONL for each — and a
``map_and_call`` pass chains variant calling behind the genpair run.

Run:  python examples/multi_engine.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.api import Mapper, MappingConfig
from repro.genome import ReadSimulator, generate_reference
from repro.util import format_table


def main() -> None:
    out_dir = Path(tempfile.mkdtemp(prefix="repro_engines_"))
    rng = np.random.default_rng(29)

    print("1. Reference + simulated samples ...")
    reference = generate_reference(rng, (120_000,))
    simulator = ReadSimulator(reference, seed=31)
    pairs = simulator.simulate_pairs(150)
    long_reads = simulator.simulate_long_reads(10, length_mean=3000,
                                               length_sd=500)

    print("2. One facade, three engines, three formats ...")
    rows = []
    with Mapper.from_reference(
            reference, config=MappingConfig(full_fallback=False)) as mapper:
        workloads = (("genpair", pairs, f"{len(pairs)} pairs"),
                     ("mm2", pairs, f"{len(pairs)} pairs"),
                     ("longread", long_reads,
                      f"{len(long_reads)} long reads"))
        for engine, items, label in workloads:
            results = mapper.map(items, engine=engine)
            mapped = sum(1 for result in results if result.mapped)
            counts = {}
            for fmt in ("sam", "paf", "jsonl"):
                path = out_dir / f"{engine}.{fmt}"
                counts[fmt] = mapper.write(results, path, format=fmt)
            rows.append((engine, label, f"{mapped}/{len(items)}",
                         counts["sam"], counts["paf"], counts["jsonl"]))
        print(format_table(
            ("engine", "workload", "mapped", "sam", "paf", "jsonl"),
            rows, title="Records written per engine x format"))

        print("\n3. Variant calling as a post-stage (genpair) ...")
        records, calls = mapper.map_and_call(
            mapper.map_stream(pairs), out_dir / "calls.sam",
            out_dir / "calls.vcf")
        print(f"   {records} records + {calls} variant calls in one "
              "pass")

        totals = mapper.engine_stats()
        print(f"\nper-engine cumulative counters: "
              f"genpair {totals['genpair']['pairs_total']} pairs | "
              f"mm2 {totals['mm2']['pairs_seen']} pairs | "
              f"longread {totals['longread']['reads_total']} reads")
    print(f"outputs under {out_dir}")


if __name__ == "__main__":
    main()
