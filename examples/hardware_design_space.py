"""Explore the GenPairX hardware design space.

Runs the NMSL event simulator across window sizes and memory
technologies, then composes full GenPairX + GenDP designs and prints
their module sizing, area/power breakdown, and end-to-end efficiency —
the paper's §7.2-§7.5 methodology as a library call.

Run:  python examples/hardware_design_space.py
"""

import numpy as np

from repro.hw import (DDR5, GDDR6, GenPairXDesign, HBM2, NMSLConfig,
                      NMSLSimulator, WorkloadProfile,
                      synthetic_location_counts)
from repro.util import format_table


def window_sweep() -> None:
    print("== NMSL sliding-window sweep (HBM2, Fig 8) ==")
    counts = synthetic_location_counts(np.random.default_rng(1), 8000)
    rows = []
    for window in (1, 16, 256, 1024, None):
        report = NMSLSimulator(NMSLConfig(window_size=window)).simulate(
            counts)
        rows.append(("No Window" if window is None else window,
                     f"{report.throughput_mpairs_per_s:.1f}",
                     f"{report.bandwidth_gbps:.1f}",
                     report.max_channel_queue_depth,
                     f"{report.centralized_buffer.size_mb:.2f}"))
    print(format_table(("window", "MPair/s", "GB/s", "max FIFO depth",
                        "buffer MB"), rows))


def memory_comparison() -> None:
    print("\n== Memory technology comparison (Table 6) ==")
    rows = []
    for memory in (DDR5, GDDR6, HBM2):
        design = GenPairXDesign(WorkloadProfile.paper(), memory=memory,
                                simulated_pairs=5000).compose()
        cost = design.total_cost
        rows.append((memory.name, memory.channels,
                     f"{design.target_mpairs:.1f}",
                     f"{design.throughput_mbps:,.0f}",
                     f"{cost.area_mm2:.1f}",
                     f"{cost.power_mw / 1e3:.1f}"))
    print(format_table(("memory", "channels", "MPair/s", "Mbp/s",
                        "area mm2", "power W"), rows))


def full_design() -> None:
    print("\n== Composed GenPairX + GenDP design (Tables 3-5) ==")
    design = GenPairXDesign(WorkloadProfile.paper(),
                            simulated_pairs=8000).compose()
    rows = [(module.name, f"{module.throughput_mpairs:.1f}",
             f"{module.latency_cycles:.1f}", module.instances)
            for module in design.modules]
    print(format_table(("module", "MPair/s per inst", "latency cyc",
                        "instances"), rows))
    print()
    rows = [(name, f"{area:.3f}", f"{power:,.1f}")
            for name, area, power in design.area_power_rows()]
    print(format_table(("component", "area mm2", "power mW"), rows))
    perf = design.as_system_perf()
    print(f"\nEnd-to-end: {perf.throughput_mbps:,.0f} Mbp/s, "
          f"{perf.per_area:.1f} Mbp/s/mm2, {perf.per_watt:.1f} Mbp/s/W")


def main() -> None:
    window_sweep()
    memory_comparison()
    full_design()


if __name__ == "__main__":
    main()
