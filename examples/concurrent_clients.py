"""Many clients, one warm daemon: TCP, coalescing, backpressure.

The serving tier multiplexes every connection onto one warm
:class:`repro.api.Mapper` through a bounded scheduler queue.  This
script shows the concurrent story end to end:

1. start a daemon on **both** endpoints — a UNIX socket and a TCP
   port (what ``repro serve --tcp HOST:PORT`` does);
2. hammer it with 8 threaded clients over TCP and check every reply
   is byte-identical to a single-threaded reference (the scheduler
   coalesces compatible small requests into shared engine runs, and
   that must never change wire bytes);
3. read the live scheduler counters (``repro stats`` / ``repro top``
   show the same numbers);
4. demonstrate the structured failure modes: a per-request deadline
   (``timeout``) and the client's automatic busy-retry policy.

Run:  python examples/concurrent_clients.py
"""

import threading

import numpy as np

from repro.api import Client, Mapper, MapServer, ServeSettings
from repro.api.client import RequestTimeoutError
from repro.core import SeedMap
from repro.genome import (ErrorModel, ReadSimulator, decode,
                          generate_reference)
from repro.index import save_index

SOCKET = "concurrent_demo.sock"
CLIENTS = 8
REQUESTS_PER_CLIENT = 5


def main() -> None:
    rng = np.random.default_rng(42)

    print("1. Simulating reads and building an index ...")
    reference = generate_reference(rng, (100_000, 50_000))
    simulator = ReadSimulator(reference,
                              error_model=ErrorModel.giab_like(),
                              seed=7)
    pairs = simulator.simulate_pairs(40)
    save_index("concurrent.rpix", SeedMap.build(reference), reference)
    wire = [(decode(p.read1.codes), decode(p.read2.codes), p.name)
            for p in pairs[:4]]

    print("2. Starting the daemon on a UNIX socket AND a TCP port ...")
    # coalesce_wait_s: hold a batch open a few ms so concurrent small
    # requests share one vectorized engine run (0 = opportunistic).
    server = MapServer(
        Mapper.from_index("concurrent.rpix"), SOCKET,
        tcp="127.0.0.1:0",  # port 0: let the OS pick a free port
        settings=ServeSettings(max_queue=32, coalesce_wait_s=0.005))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    address = f"127.0.0.1:{server.tcp_port}"
    print(f"   listening on {SOCKET} and tcp://{address}")

    print(f"3. Hammering over TCP: {CLIENTS} clients x "
          f"{REQUESTS_PER_CLIENT} requests ...")
    with Client(SOCKET) as client:
        reference_lines = client.map_pairs(wire)["lines"]
    mismatches = []

    def hammer(index: int) -> None:
        with Client(address) as client:
            for _ in range(REQUESTS_PER_CLIENT):
                reply = client.map_pairs(wire)
                if reply["lines"] != reference_lines:
                    mismatches.append(index)

    workers = [threading.Thread(target=hammer, args=(i,))
               for i in range(CLIENTS)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    total = CLIENTS * REQUESTS_PER_CLIENT
    print(f"   {total} concurrent replies, every one byte-identical "
          f"to the reference: {not mismatches}")

    print("4. Live scheduler counters (repro stats shows these) ...")
    with Client(address) as client:
        report = client.stats()
        scheduler = report["scheduler"]
        print(f"   engine runs: {scheduler['batches']}, requests "
              f"coalesced into shared runs: "
              f"{scheduler['coalesced_requests']} (largest batch "
              f"{scheduler['max_batch_requests']} requests)")
        print(f"   busy rejections: {scheduler['busy_rejected']}, "
              f"timeouts: {scheduler['timeouts']}, queue now: "
              f"{scheduler['queue_depth']}/{scheduler['max_queue']}")

        print("5. Structured failure modes ...")
        # A deadline the mapping cannot possibly meet: the daemon
        # answers a typed `timeout` error instead of hanging.
        try:
            client.map_pairs(wire, timeout=1e-4)
        except RequestTimeoutError as exc:
            print(f"   timeout error (stage={exc.stage!r}): {exc}")
        # Busy answers (full queue / client limit) are retried with
        # exponential backoff automatically; tune or disable per
        # client.  With retries exhausted, ServerBusyError surfaces.
        retrying = Client(address, busy_retries=4,
                          busy_backoff_s=0.05)
        print("   busy-retry policy: 4 retries, exponential backoff, "
              "honours the daemon's retry_after_s hint")
        retrying.close()

        client.shutdown()
    thread.join(timeout=10)
    print("6. Daemon shut down gracefully.")


if __name__ == "__main__":
    main()
