"""End-to-end variant calling: the paper's Table 7 workflow in miniature.

Reference -> diploid donor with truth variants -> simulated reads ->
hybrid GenPair+MM2 mapping -> pileup -> variant calls -> accuracy versus
the truth set -> VCF on disk.

Run:  python examples/variant_calling_pipeline.py
"""

import numpy as np

from repro.core import GenPairPipeline
from repro.genome import (ErrorModel, ReadSimulator, generate_reference,
                          plant_variants)
from repro.mapper import Mm2LikeMapper, make_full_fallback
from repro.util import format_table
from repro.variants import (Pileup, call_variants, compare_calls,
                            split_by_kind, write_vcf)


def main() -> None:
    rng = np.random.default_rng(2025)

    print("1. Reference + diploid donor (SNP 1e-3, INDEL 2e-4) ...")
    reference = generate_reference(rng, (80_000,))
    donor = plant_variants(rng, reference)
    truth_snps, truth_indels = split_by_kind(donor.truth)
    print(f"   truth: {len(truth_snps)} SNPs, {len(truth_indels)} INDELs")

    print("2. Simulating ~18x coverage of 2x150bp pairs ...")
    simulator = ReadSimulator(reference, donor=donor,
                              error_model=ErrorModel.giab_like(), seed=3)
    pairs = simulator.simulate_pairs(2400)

    print("3. Mapping with GenPair + MM2 hybrid ...")
    mapper = Mm2LikeMapper(reference)
    pipeline = GenPairPipeline(reference,
                               full_fallback=make_full_fallback(mapper))
    results = pipeline.map_pairs(pairs)
    print(f"   {pipeline.stats.light_aligned_pct:.1f}% light-aligned, "
          f"{pipeline.stats.unmapped} pairs unmapped")

    print("4. Pileup + variant calling ...")
    pileup = Pileup(reference)
    for result in results:
        pileup.add_record(result.record1)
        pileup.add_record(result.record2)
    calls = call_variants(pileup)
    call_snps, call_indels = split_by_kind(calls)

    print("5. Accuracy versus the truth set:")
    rows = []
    for kind, called, truth in (("SNP", call_snps, truth_snps),
                                ("INDEL", call_indels, truth_indels)):
        report = compare_calls(called, truth)
        rows.append((kind, report.true_positives,
                     report.false_positives, report.false_negatives,
                     f"{report.precision:.4f}", f"{report.recall:.4f}",
                     f"{report.f1:.4f}"))
    print(format_table(("kind", "TP", "FP", "FN", "precision", "recall",
                        "F1"), rows))

    count = write_vcf("variant_calls.vcf", calls, reference=reference)
    print(f"6. Wrote {count} calls to variant_calls.vcf")


if __name__ == "__main__":
    main()
