"""Persistent index workflow: build once, memory-map and stream forever.

Simulates a dataset to disk, builds the SeedMap into a persistent
``.rpix`` index, then serves a mapping run the production way — the
index is opened with ``np.memmap`` (milliseconds, no FASTA rebuild),
the paired FASTQ files stream through the pipeline in O(batch) memory,
and the SAM file is written incrementally.

Run:  python examples/persistent_index.py
"""

import time

import numpy as np

from repro.core import GenPairPipeline, GenPairConfig, SeedMap
from repro.genome import (ErrorModel, ReadSimulator, SamWriter,
                          generate_reference, iter_pairs, write_fasta,
                          write_fastq)
from repro.index import inspect_index, open_index, save_index


def main() -> None:
    rng = np.random.default_rng(42)

    print("1. Simulating a 150kb reference and 400 read pairs ...")
    reference = generate_reference(rng, (100_000, 50_000))
    simulator = ReadSimulator(reference,
                              error_model=ErrorModel.giab_like(), seed=7)
    pairs = simulator.simulate_pairs(400)
    write_fasta("pindex_ref.fa", reference)
    write_fastq("pindex_1.fq",
                ((p.read1.name, p.read1.codes) for p in pairs))
    write_fastq("pindex_2.fq",
                ((p.read2.name, p.read2.codes) for p in pairs))

    print("2. Building the SeedMap and saving the persistent index ...")
    start = time.perf_counter()
    seedmap = SeedMap.build(reference)
    build_s = time.perf_counter() - start
    total = save_index("pindex.rpix", seedmap, reference)
    print(f"   built in {build_s * 1e3:.0f} ms, "
          f"wrote pindex.rpix ({total:,} bytes)")

    print("3. Opening the index (np.memmap, checksums verified) ...")
    start = time.perf_counter()
    index = open_index("pindex.rpix")
    open_s = time.perf_counter() - start
    print(f"   opened in {open_s * 1e3:.1f} ms "
          f"({100 * open_s / build_s:.1f}% of the build) — fingerprint: "
          f"seed length {index.seed_length}, "
          f"filter threshold {index.filter_threshold}")

    print("4. Streaming the FASTQ pair through the mapped index ...")
    config = GenPairConfig(seed_length=index.seed_length,
                           filter_threshold=index.filter_threshold)
    pipeline = GenPairPipeline(index.reference, seedmap=index.seedmap,
                               config=config)
    with SamWriter("pindex.sam", reference=index.reference) as writer:
        for result in pipeline.map_stream(
                iter_pairs("pindex_1.fq", "pindex_2.fq"),
                chunk_size=128):
            writer.write_pair(result)
    stats = pipeline.stats
    print(f"   mapped {stats.pairs_total} pairs -> {writer.count} "
          f"records (light-aligned {stats.light_aligned_pct:.1f}%)")

    print("5. Index contents:")
    for row in inspect_index("pindex.rpix")["arrays"]:
        print(f"   {row['name']:<13} {row['count']:>9,} entries  "
              f"{row['bytes']:>11,} bytes")


if __name__ == "__main__":
    main()
