"""Live observability: metrics, spans, and the daemon dashboard.

Walks the ``repro.obs`` story in one script:

1. simulate a dataset and build a persistent index;
2. map offline and read the process metrics registry directly —
   per-stage pipeline histograms, per-engine run counters, output
   writer totals — then dump it the way ``repro map --metrics-json``
   does;
3. capture a span trace of an in-process run (what the daemon's
   ``trace`` request flag returns over the wire);
4. start a daemon, drive it with a few requests across engines and
   formats, and render the expanded ``stats`` reply with the same
   code ``repro stats`` / ``repro top`` use.

Run:  python examples/live_metrics.py
"""

import json
import threading

import numpy as np

from repro.api import Client, Mapper, MapServer
from repro.core import SeedMap
from repro.genome import (ErrorModel, ReadSimulator, decode,
                          generate_reference, write_fastq)
from repro.index import save_index
from repro.obs import (capture_trace, get_registry, render_metrics,
                       render_top, write_metrics_json)

SOCKET = "metrics_demo.sock"


def main() -> None:
    rng = np.random.default_rng(42)

    print("1. Simulating a 120kb reference and 200 read pairs ...")
    reference = generate_reference(rng, (80_000, 40_000))
    simulator = ReadSimulator(reference,
                              error_model=ErrorModel.giab_like(),
                              seed=7)
    pairs = simulator.simulate_pairs(200)
    write_fastq("metrics_1.fq",
                ((p.read1.name, p.read1.codes) for p in pairs))
    write_fastq("metrics_2.fq",
                ((p.read2.name, p.read2.codes) for p in pairs))
    save_index("metrics.rpix", SeedMap.build(reference), reference)

    print("2. Mapping offline; every layer records into one "
          "process-wide registry ...")
    registry = get_registry()
    registry.reset()  # a clean slate makes the printout readable
    with Mapper.from_index("metrics.rpix") as mapper:
        results = mapper.map_file("metrics_1.fq", "metrics_2.fq")
        mapper.write(results, "metrics_demo.sam")
    snapshot = registry.snapshot()
    chunks = snapshot["counters"]["pipeline.chunks"]
    seed_ms = snapshot["histograms"]["pipeline.seed_query_s"]["sum"] * 1e3
    align_ms = (snapshot["histograms"]["pipeline.filter_align_s"]["sum"]
                * 1e3)
    print(f"   {chunks} chunks: seeding {seed_ms:.1f}ms, "
          f"filter+align {align_ms:.1f}ms "
          f"({align_ms / (seed_ms + align_ms) * 100:.0f}% of stage "
          "time in alignment)")
    write_metrics_json("metrics_demo.json")
    print("   full registry + host metadata -> metrics_demo.json "
          "(what `repro map --metrics-json` writes)")

    print("3. Capturing a span trace of one in-process run ...")
    with Mapper.from_index("metrics.rpix") as mapper:
        items = [(p.read1.codes, p.read2.codes, p.name)
                 for p in pairs[:64]]
        with capture_trace() as tracer:
            mapper.map(items)
    for span in tracer.to_dicts()[:6]:
        print(f"   {'  ' * span['depth']}{span['name']}: "
              f"{span['elapsed_s'] * 1e3:.2f}ms")
    print(f"   ... {len(tracer.records)} spans total (the daemon "
          "returns exactly this for `trace: true` requests)")

    print("4. Starting a daemon and driving it across engines ...")
    server = MapServer(Mapper.from_index("metrics.rpix"), SOCKET)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with Client(SOCKET) as client:
            wire = [(decode(p.read1.codes), decode(p.read2.codes),
                     p.name) for p in pairs[:50]]
            client.map_pairs(wire)
            client.map_pairs(wire, engine="mm2", format="paf")
            client.map_file("metrics_1.fq", "metrics_2.fq",
                            "metrics_daemon.sam")
            reply = client.stats()
        print("   the dashboard `repro top` redraws live:")
        for line in render_top(reply):
            print("   " + line.replace("\n", "\n   "))
        print("   ... and `repro stats` appends the full registry "
              "tables:")
        for line in render_metrics(reply["metrics"]):
            print("   " + line.replace("\n", "\n   "))
        print("   (the same reply as JSON: `repro stats --json`, "
              f"{len(json.dumps(reply))} bytes here)")
    finally:
        with Client(SOCKET) as client:
            client.shutdown()
        thread.join(timeout=10)
    print("done.")


if __name__ == "__main__":
    main()
