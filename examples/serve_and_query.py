"""The serving workflow: a warm daemon, a thin client, zero rebuilds.

Walks the full ``repro.api`` story in one script:

1. simulate a dataset and build a persistent index;
2. the five-line ``Mapper`` hello-world (the whole Python API);
3. start a :class:`repro.api.MapServer` — the same daemon ``repro
   serve`` runs — holding the memory-mapped index warm;
4. query it with :class:`repro.api.Client`: an inline pair request
   and a server-side file-to-file mapping, with per-request stats;
5. show the served SAM is byte-identical to the offline run, then
   shut the daemon down gracefully.

Run:  python examples/serve_and_query.py
"""

import threading
import time

import numpy as np

from repro.api import Client, Mapper, MapServer
from repro.core import SeedMap
from repro.genome import (ErrorModel, ReadSimulator, decode,
                          generate_reference, write_fasta, write_fastq)
from repro.index import save_index

SOCKET = "serve_demo.sock"


def main() -> None:
    rng = np.random.default_rng(42)

    print("1. Simulating a 150kb reference and 300 read pairs ...")
    reference = generate_reference(rng, (100_000, 50_000))
    simulator = ReadSimulator(reference,
                              error_model=ErrorModel.giab_like(),
                              seed=7)
    pairs = simulator.simulate_pairs(300)
    write_fasta("serve_ref.fa", reference)
    write_fastq("serve_1.fq",
                ((p.read1.name, p.read1.codes) for p in pairs))
    write_fastq("serve_2.fq",
                ((p.read2.name, p.read2.codes) for p in pairs))
    save_index("serve.rpix", SeedMap.build(reference), reference)

    print("2. The 5-line Python API hello-world ...")
    with Mapper.from_index("serve.rpix") as mapper:
        results = mapper.map_file("serve_1.fq", "serve_2.fq")
        mapper.to_sam(results, "offline.sam")
        print(f"   mapped {mapper.last_stats.pairs_total} pairs, "
              f"{mapper.last_stats.light_aligned_pct:.1f}% "
              "DP-free -> offline.sam")

    print("3. Starting the daemon (what `repro serve` runs) ...")
    # workers=2: the worker pool forks once at startup and stays warm.
    server = MapServer(Mapper.from_index("serve.rpix", workers=2),
                       SOCKET)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    with Client(SOCKET) as client:
        reply = client.ping()
        print(f"   daemon alive: pid {reply['pid']}, index "
              f"{reply['index']}")

        print("4. Inline request: mapping 3 pairs over the socket ...")
        wire = [(decode(p.read1.codes), decode(p.read2.codes), p.name)
                for p in pairs[:3]]
        reply = client.map_pairs(wire)
        print(f"   {reply['pairs']} pairs -> {len(reply['sam'])} SAM "
              f"records in {reply['elapsed_s'] * 1e3:.1f} ms")
        for line in reply["sam"][:2]:
            print(f"     {line.split(chr(9))[0]} ... "
                  f"{line.split(chr(9))[3]}")

        print("5. File request: daemon maps the whole FASTQ pair ...")
        start = time.perf_counter()
        reply = client.map_file("serve_1.fq", "serve_2.fq",
                                "served.sam")
        elapsed = time.perf_counter() - start
        print(f"   {reply['pairs']} pairs -> served.sam in "
              f"{elapsed * 1e3:.0f} ms (no index load, no pool fork)")

        identical = (open("served.sam", "rb").read()
                     == open("offline.sam", "rb").read())
        print(f"   byte-identical to the offline run: {identical}")

        report = client.stats()
        print(f"   server totals: {report['server']['requests']} "
              f"requests, {report['server']['pairs_mapped']} pairs, "
              f"mapper cumulative "
              f"{report['mapper']['pairs_total']} pairs")

        client.shutdown()
    thread.join(timeout=10)
    print("6. Daemon shut down gracefully; socket removed.")


if __name__ == "__main__":
    main()
